module Json = Heimdall_json.Json

let ( let* ) = Result.bind

let string_list field json =
  match Json.member field json with
  | None -> Error (Printf.sprintf "rule missing %S" field)
  | Some (Json.List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.String s :: rest -> go (s :: acc) rest
        | _ -> Error (Printf.sprintf "%S must contain only strings" field)
      in
      go [] items
  | Some _ -> Error (Printf.sprintf "%S must be a list" field)

let rule_of_json json =
  let* effect =
    match Json.member "effect" json with
    | Some (Json.String "allow") -> Ok Privilege.Allow
    | Some (Json.String "deny") -> Ok Privilege.Deny
    | Some _ | None -> Error "rule effect must be \"allow\" or \"deny\""
  in
  let* actions = string_list "actions" json in
  let* resources = string_list "resources" json in
  if actions = [] then Error "rule has no actions"
  else if resources = [] then Error "rule has no resources"
  else
    let unknown =
      List.filter
        (fun a -> not (List.exists (Privilege.pattern_matches a) Action.catalog))
        actions
    in
    match unknown with
    | u :: _ -> Error (Printf.sprintf "action pattern %S matches no known action" u)
    | [] ->
        Ok
          {
            Privilege.effect;
            actions;
            resources = List.map Privilege.resource_of_string resources;
          }

let of_json json =
  match Json.member "rules" json with
  | None -> Error "document missing \"rules\""
  | Some (Json.List rules) ->
      let rec go acc = function
        | [] -> Ok (Privilege.of_predicates (List.rev acc))
        | r :: rest ->
            let* p = rule_of_json r in
            go (p :: acc) rest
      in
      go [] rules
  | Some _ -> Error "\"rules\" must be a list"

let to_json (t : Privilege.t) =
  let rule_to_json (p : Privilege.predicate) =
    Json.Obj
      [
        ("effect", Json.String (Privilege.effect_to_string p.effect));
        ("actions", Json.List (List.map (fun a -> Json.String a) p.actions));
        ( "resources",
          Json.List
            (List.map (fun r -> Json.String (Privilege.resource_to_string r)) p.resources)
        );
      ]
  in
  Json.Obj
    [
      ("version", Json.Int 1);
      ("rules", Json.List (List.map rule_to_json t.predicates));
    ]

let parse text =
  match Json.of_string text with
  | json -> of_json json
  | exception Json.Parse_error m -> Error m

let render ?pretty t = Json.to_string ?pretty (to_json t)
