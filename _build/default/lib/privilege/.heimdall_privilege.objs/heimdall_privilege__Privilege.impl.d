lib/privilege/privilege.ml: Action Format List Printf String
