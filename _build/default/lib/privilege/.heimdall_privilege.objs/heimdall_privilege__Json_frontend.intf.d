lib/privilege/json_frontend.mli: Heimdall_json Privilege
