lib/privilege/action.ml: Heimdall_net List String Topology
