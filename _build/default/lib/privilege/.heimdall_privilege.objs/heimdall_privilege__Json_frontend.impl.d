lib/privilege/json_frontend.ml: Action Heimdall_json List Printf Privilege Result
