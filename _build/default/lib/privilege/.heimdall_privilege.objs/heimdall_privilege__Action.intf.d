lib/privilege/action.mli: Heimdall_net
