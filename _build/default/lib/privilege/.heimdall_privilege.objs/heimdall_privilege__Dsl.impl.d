lib/privilege/dsl.ml: Action Buffer List Printf Privilege String
