lib/privilege/privilege.mli: Action Format Heimdall_net
