lib/privilege/dsl.mli: Privilege
