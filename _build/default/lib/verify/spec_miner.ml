open Heimdall_net
open Heimdall_config
open Heimdall_control

type options = { mine_icmp : bool; tcp_services : (string * int) list }

let default_options = { mine_icmp = true; tcp_services = [] }

let host_subnets net =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun node ->
      if Network.kind node net = Some Topology.Host then
        match Network.config node net with
        | None -> ()
        | Some cfg ->
            List.iter
              (fun (i : Ast.interface) ->
                match i.addr with
                | Some a when i.enabled ->
                    let subnet = Ifaddr.subnet a in
                    let key = Prefix.to_string subnet in
                    let cur =
                      Option.value (Hashtbl.find_opt tbl key) ~default:(subnet, [])
                    in
                    Hashtbl.replace tbl key (fst cur, node :: snd cur)
                | _ -> ())
              cfg.interfaces)
    (Network.node_names net);
  Hashtbl.fold (fun _ (subnet, hosts) acc -> (subnet, List.sort String.compare hosts) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Prefix.compare a b)

let representative net hosts =
  (* First host (sorted) with an address. *)
  List.find_map (fun h -> Option.map (fun a -> (h, a)) (Network.host_address h net)) hosts

let firewalls net = Network.node_names net |> List.filter (fun n -> Network.kind n net = Some Topology.Firewall)

let classify dp (flow : Flow.t) =
  match Trace.trace dp flow with
  | Trace.Delivered _ as r -> `Delivered (Trace.nodes_on_path r)
  | Trace.Dropped (Trace.Acl_denied _, _) -> `Acl_denied
  | Trace.Dropped _ -> `Broken

let mine ?(options = default_options) dp =
  let net = Dataplane.network dp in
  let subnets = host_subnets net in
  let fws = firewalls net in
  let icmp_policies =
    if not options.mine_icmp then []
    else
      List.concat_map
        (fun (src_subnet, src_hosts) ->
          List.filter_map
            (fun (dst_subnet, dst_hosts) ->
              if Prefix.equal src_subnet dst_subnet then None
              else
                match (representative net src_hosts, representative net dst_hosts) with
                | Some (_, src_addr), Some (_, dst_addr) -> (
                    let flow = Flow.icmp src_addr dst_addr in
                    let src_label = Prefix.to_string src_subnet in
                    let dst_label = Prefix.to_string dst_subnet in
                    match classify dp flow with
                    | `Delivered path -> (
                        match List.find_opt (fun fw -> List.mem fw path) fws with
                        | Some fw ->
                            Some (Policy.waypoint ~src_label ~dst_label ~via:fw flow)
                        | None -> Some (Policy.reachable ~src_label ~dst_label flow))
                    | `Acl_denied -> Some (Policy.isolated ~src_label ~dst_label flow)
                    | `Broken -> None)
                | _ -> None)
            subnets)
        subnets
  in
  let tcp_policies =
    List.concat_map
      (fun (server, port) ->
        match Network.host_address server net with
        | None -> []
        | Some server_addr ->
            List.filter_map
              (fun (src_subnet, src_hosts) ->
                match representative net src_hosts with
                | Some (_, src_addr) when not (Ipv4.equal src_addr server_addr) -> (
                    let flow = Flow.tcp ~dst_port:port src_addr server_addr in
                    let src_label = Prefix.to_string src_subnet in
                    let dst_label = Printf.sprintf "%s:%d" server port in
                    match classify dp flow with
                    | `Delivered _ -> Some (Policy.reachable ~src_label ~dst_label flow)
                    | `Acl_denied -> Some (Policy.isolated ~src_label ~dst_label flow)
                    | `Broken -> None)
                | _ -> None)
              subnets)
      options.tcp_services
  in
  icmp_policies @ tcp_policies
