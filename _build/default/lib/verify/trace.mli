(** Flow tracing over a computed dataplane: the engine behind reachability
    queries, policy checking, ping/traceroute in the twin network, and the
    spec miner. *)

open Heimdall_net
open Heimdall_control

type direction = In | Out

type drop_reason =
  | No_route of { node : string }
      (** FIB lookup failed. *)
  | Acl_denied of {
      node : string;
      iface : string;
      dir : direction;
      acl : string;
      rule_seq : int option;  (** [None] when the implicit deny fired. *)
    }
  | No_l2_path of { node : string; towards : Ipv4.t }
      (** Next hop known but no layer-2 path to it (shut port, wrong VLAN,
          unplugged cable). *)
  | Unknown_destination of { node : string; addr : Ipv4.t }
      (** The destination address is configured on no device. *)
  | Unknown_source of { addr : Ipv4.t }
      (** No device owns the flow's source — nothing can originate it. *)
  | Ttl_exceeded
      (** Hop budget exhausted: a forwarding loop. *)

val drop_reason_to_string : drop_reason -> string

type hop = {
  node : string;
  in_iface : string option;  (** [None] at the originating node. *)
  out_iface : string option;  (** [None] at the delivering node. *)
  l2_path : string list;  (** Switches bridging the egress segment. *)
}

type result = Delivered of hop list | Dropped of drop_reason * hop list

val is_delivered : result -> bool
val hops : result -> hop list

val nodes_on_path : result -> string list
(** Every L3 node and switch the flow touched, in order, without
    duplicates. *)

val trace : Dataplane.t -> Flow.t -> result
(** Forward-simulate one flow.  ACLs are evaluated outbound on each egress
    interface and inbound on each ingress interface; hosts originate and
    receive but do not forward. *)

val result_to_string : result -> string
(** Multi-line traceroute-style rendering. *)
