lib/verify/policy.mli: Dataplane Flow Format Heimdall_control Heimdall_net
