lib/verify/trace.ml: Acl Ast Buffer Dataplane Fib Flow Hashtbl Heimdall_config Heimdall_control Heimdall_net Ifaddr Ipv4 L2 List Network Option Printf String Topology
