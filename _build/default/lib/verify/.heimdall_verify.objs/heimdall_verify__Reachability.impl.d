lib/verify/reachability.ml: Dataplane Flow Hashtbl Heimdall_control Heimdall_net Ipv4 List Network Option Printf String Topology Trace
