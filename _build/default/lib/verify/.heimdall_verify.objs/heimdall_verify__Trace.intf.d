lib/verify/trace.mli: Dataplane Flow Heimdall_control Heimdall_net Ipv4
