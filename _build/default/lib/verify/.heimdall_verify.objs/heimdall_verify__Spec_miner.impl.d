lib/verify/spec_miner.ml: Ast Dataplane Flow Hashtbl Heimdall_config Heimdall_control Heimdall_net Ifaddr Ipv4 List Network Option Policy Prefix Printf String Topology Trace
