lib/verify/reachability.mli: Dataplane Heimdall_config Heimdall_control Network
