lib/verify/spec_miner.mli: Dataplane Heimdall_control Heimdall_net Network Policy Prefix
