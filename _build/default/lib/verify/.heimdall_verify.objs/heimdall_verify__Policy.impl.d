lib/verify/policy.ml: Flow Format Heimdall_net List Option Printf String Trace
