(** Whole-network reachability matrices and change-impact analysis.

    The enforcer uses this to answer the operator's real question about a
    change set: {e who can talk to whom now that couldn't before — and
    who lost connectivity}? *)

open Heimdall_control

type matrix
(** Host-pair ICMP reachability: for every ordered pair of addressed
    hosts, whether a flow is delivered. *)

val compute : Dataplane.t -> matrix
(** One trace per ordered host pair. *)

val reachable : src:string -> dst:string -> matrix -> bool option
(** [None] when either host is unknown/unaddressed. *)

val pair_count : matrix -> int
val reachable_count : matrix -> int

type impact = {
  gained : (string * string) list;  (** Newly connected (src, dst). *)
  lost : (string * string) list;  (** Newly disconnected. *)
}

val diff : before:matrix -> after:matrix -> impact
(** Pairs present in both matrices whose verdict flipped. *)

val impact_to_string : impact -> string
(** ["no reachability change"] or a +/- listing. *)

val impact_of_changes :
  production:Network.t -> Heimdall_config.Change.t list -> (impact, string) result
(** Convenience: compute both matrices around a change set. *)
