(** Policy mining from a healthy dataplane — our stand-in for
    config2spec (Birkner et al., NSDI'20), which the paper uses to derive
    network policies from configuration files.

    The miner works at subnet granularity: for every ordered pair of
    host-bearing subnets it traces a representative flow and emits

    - a [Reachable] policy when the flow is delivered (upgraded to a
      [Waypoint] policy when the path crosses a firewall);
    - an [Isolated] policy when the flow is dropped by an explicit ACL
      rule (evidence of intent);
    - nothing when the flow is dropped for any other reason (breakage is
      not intent).

    Optionally, TCP service policies are mined towards designated server
    hosts. *)

open Heimdall_net
open Heimdall_control

type options = {
  mine_icmp : bool;  (** Subnet-to-subnet ICMP policies (default true). *)
  tcp_services : (string * int) list;
      (** [(server_node, port)]: also mine per-subnet TCP policies towards
          these services. *)
}

val default_options : options

val host_subnets : Network.t -> (Prefix.t * string list) list
(** Subnets with at least one attached host, with the hosts attached to
    each, sorted by prefix. *)

val mine : ?options:options -> Dataplane.t -> Policy.t list
(** Mine the policy set from the given (assumed healthy) dataplane.
    Deterministic: same dataplane, same policies, stable order. *)
