open Heimdall_net
open Heimdall_control

type matrix = {
  hosts : (string * Ipv4.t) list;  (* sorted by name *)
  reach : (string * string, bool) Hashtbl.t;
}

let addressed_hosts net =
  Network.node_names net
  |> List.filter_map (fun n ->
         if Network.kind n net = Some Topology.Host then
           Option.map (fun a -> (n, a)) (Network.host_address n net)
         else None)

let compute dp =
  let net = Dataplane.network dp in
  let hosts = addressed_hosts net in
  let reach = Hashtbl.create (List.length hosts * List.length hosts) in
  List.iter
    (fun (src, src_addr) ->
      List.iter
        (fun (dst, dst_addr) ->
          if src <> dst then
            Hashtbl.replace reach (src, dst)
              (Trace.is_delivered (Trace.trace dp (Flow.icmp src_addr dst_addr))))
        hosts)
    hosts;
  { hosts; reach }

let reachable ~src ~dst m = Hashtbl.find_opt m.reach (src, dst)
let pair_count m = Hashtbl.length m.reach
let reachable_count m = Hashtbl.fold (fun _ ok n -> if ok then n + 1 else n) m.reach 0

type impact = { gained : (string * string) list; lost : (string * string) list }

let diff ~before ~after =
  let gained = ref [] and lost = ref [] in
  Hashtbl.iter
    (fun pair ok_before ->
      match Hashtbl.find_opt after.reach pair with
      | Some ok_after when ok_before <> ok_after ->
          if ok_after then gained := pair :: !gained else lost := pair :: !lost
      | _ -> ())
    before.reach;
  {
    gained = List.sort compare !gained;
    lost = List.sort compare !lost;
  }

let impact_to_string i =
  if i.gained = [] && i.lost = [] then "no reachability change"
  else
    let fmt sign (a, b) = Printf.sprintf "%s %s -> %s" sign a b in
    String.concat "\n" (List.map (fmt "+") i.gained @ List.map (fmt "-") i.lost)

let impact_of_changes ~production changes =
  match Network.apply_changes changes production with
  | Error _ as e -> ( match e with Error m -> Error m | Ok _ -> assert false)
  | Ok shadow ->
      let before = compute (Dataplane.compute production) in
      let after = compute (Dataplane.compute shadow) in
      Ok (diff ~before ~after)
