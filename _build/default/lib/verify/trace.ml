open Heimdall_net
open Heimdall_config
open Heimdall_control

type direction = In | Out

type drop_reason =
  | No_route of { node : string }
  | Acl_denied of {
      node : string;
      iface : string;
      dir : direction;
      acl : string;
      rule_seq : int option;
    }
  | No_l2_path of { node : string; towards : Ipv4.t }
  | Unknown_destination of { node : string; addr : Ipv4.t }
  | Unknown_source of { addr : Ipv4.t }
  | Ttl_exceeded

let direction_to_string = function In -> "in" | Out -> "out"

let drop_reason_to_string = function
  | No_route { node } -> Printf.sprintf "no route at %s" node
  | Acl_denied { node; iface; dir; acl; rule_seq } ->
      Printf.sprintf "denied by access-list %s (%s %s on %s%s)" acl
        (direction_to_string dir) iface node
        (match rule_seq with
        | Some seq -> Printf.sprintf ", rule %d" seq
        | None -> ", implicit deny")
  | No_l2_path { node; towards } ->
      Printf.sprintf "no layer-2 path from %s towards %s" node (Ipv4.to_string towards)
  | Unknown_destination { node; addr } ->
      Printf.sprintf "destination %s unknown beyond %s" (Ipv4.to_string addr) node
  | Unknown_source { addr } -> Printf.sprintf "source %s owned by no device" (Ipv4.to_string addr)
  | Ttl_exceeded -> "ttl exceeded (forwarding loop)"

type hop = {
  node : string;
  in_iface : string option;
  out_iface : string option;
  l2_path : string list;
}

type result = Delivered of hop list | Dropped of drop_reason * hop list

let is_delivered = function Delivered _ -> true | Dropped _ -> false
let hops = function Delivered hs -> hs | Dropped (_, hs) -> hs

let nodes_on_path result =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let note n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      out := n :: !out
    end
  in
  List.iter
    (fun h ->
      note h.node;
      List.iter note h.l2_path)
    (hops result);
  List.rev !out

let max_ttl = 64

let acl_check (net : Network.t) node iface dir (flow : Flow.t) =
  (* Returns [Some reason] when an ACL on (node, iface, dir) denies. *)
  match Network.config node net with
  | None -> None
  | Some cfg -> (
      match Ast.find_interface iface cfg with
      | None -> None
      | Some i -> (
          let binding = match dir with In -> i.acl_in | Out -> i.acl_out in
          match binding with
          | None -> None
          | Some acl_name -> (
              match Ast.find_acl acl_name cfg with
              | None ->
                  (* A dangling binding denies everything (fail-closed). *)
                  Some (Acl_denied { node; iface; dir; acl = acl_name; rule_seq = None })
              | Some acl -> (
                  match Acl.eval acl flow with
                  | Acl.Permit, _ -> None
                  | Acl.Deny, rule ->
                      Some
                        (Acl_denied
                           {
                             node;
                             iface;
                             dir;
                             acl = acl_name;
                             rule_seq = Option.map (fun (r : Acl.rule) -> r.Acl.seq) rule;
                           })))))

let owns_addr (net : Network.t) node addr =
  match Network.config node net with
  | None -> false
  | Some cfg ->
      List.exists
        (fun (i : Ast.interface) ->
          i.enabled
          && match i.addr with
             | Some a -> Ipv4.equal (Ifaddr.address a) addr
             | None -> false)
        cfg.interfaces

let l2_segment dp node out_iface =
  let l2 = Dataplane.l2 dp in
  match L2.domain_of { Topology.node; iface = out_iface } l2 with
  | None -> []
  | Some d -> L2.domain_switches d l2

let trace dp (flow : Flow.t) =
  let net = Dataplane.network dp in
  let rec step node in_iface acc ttl =
    if ttl <= 0 then Dropped (Ttl_exceeded, List.rev acc)
    else
      (* Inbound ACL on the interface the packet arrived through. *)
      let inbound_denial =
        match in_iface with
        | None -> None
        | Some iface -> acl_check net node iface In flow
      in
      match inbound_denial with
      | Some reason ->
          Dropped (reason, List.rev ({ node; in_iface; out_iface = None; l2_path = [] } :: acc))
      | None ->
          if owns_addr net node flow.dst then
            Delivered (List.rev ({ node; in_iface; out_iface = None; l2_path = [] } :: acc))
          else begin
            match Fib.lookup flow.dst (Dataplane.fib node dp) with
            | None ->
                Dropped
                  ( No_route { node },
                    List.rev ({ node; in_iface; out_iface = None; l2_path = [] } :: acc) )
            | Some route -> (
                let out_iface = route.out_iface in
                match acl_check net node out_iface Out flow with
                | Some reason ->
                    Dropped
                      ( reason,
                        List.rev
                          ({ node; in_iface; out_iface = Some out_iface; l2_path = [] } :: acc)
                      )
                | None -> (
                    let towards =
                      match route.next_hop with Some nh -> nh | None -> flow.dst
                    in
                    let this_hop l2_path =
                      { node; in_iface; out_iface = Some out_iface; l2_path }
                    in
                    match Network.owner_of_address towards net with
                    | None ->
                        let reason =
                          if route.next_hop = None then
                            Unknown_destination { node; addr = towards }
                          else No_l2_path { node; towards }
                        in
                        Dropped (reason, List.rev (this_hop [] :: acc))
                    | Some (peer_node, peer_iface) ->
                        let l2 = Dataplane.l2 dp in
                        let adjacent =
                          L2.same_domain
                            { Topology.node; iface = out_iface }
                            { Topology.node = peer_node; iface = peer_iface }
                            l2
                        in
                        if not adjacent then
                          Dropped
                            (No_l2_path { node; towards }, List.rev (this_hop [] :: acc))
                        else
                          let seg = l2_segment dp node out_iface in
                          step peer_node (Some peer_iface) (this_hop seg :: acc) (ttl - 1)))
          end
  in
  match Network.owner_of_address flow.src net with
  | None -> Dropped (Unknown_source { addr = flow.src }, [])
  | Some (src_node, _) -> step src_node None [] max_ttl

let result_to_string result =
  let buf = Buffer.create 256 in
  List.iteri
    (fun idx h ->
      Buffer.add_string buf
        (Printf.sprintf "%2d. %s%s%s%s\n" (idx + 1) h.node
           (match h.in_iface with Some i -> " in:" ^ i | None -> "")
           (match h.out_iface with Some i -> " out:" ^ i | None -> "")
           (match h.l2_path with
           | [] -> ""
           | sws -> " via " ^ String.concat "," sws)))
    (hops result);
  (match result with
  | Delivered _ -> Buffer.add_string buf "delivered\n"
  | Dropped (reason, _) ->
      Buffer.add_string buf (Printf.sprintf "dropped: %s\n" (drop_reason_to_string reason)));
  Buffer.contents buf
