(** The enterprise evaluation network (paper Table 1, row 1): 9 routers,
    9 hosts, 22 links.

    Layout: r1 is the internet edge (upstream port ext0, originates the
    default route); r2/r3 form the redundant core; r4–r7 are access
    routers for the four office subnets (r4/r5/r6 switch their hosts on
    VLANs with SVIs, r7 uses a routed port); r8 fronts the server subnet
    and carries the protection ACL; r9 is the management router.  All
    routing is single-area OSPF.

    {v
            ext0 |                 r9
                 r1 --------------/
                /  \
              r2 -- r3
             /| \\   /| \
            / |  r8  | \
          r4--r5     r6--r7
          (r4 ------ r6)
    v} *)

open Heimdall_net
open Heimdall_control

val build : unit -> Network.t
(** Construct the healthy network (deterministic). *)

val policies : Network.t -> Heimdall_verify.Policy.t list
(** The mined policy set for this network (subnet ICMP matrix plus TCP/80
    towards the web server h8). *)

val issues : Network.t -> Heimdall_msp.Issue.t list
(** The three pilot-study issues, in paper order: [vlan], [ospf], [isp]. *)

val web_server : string
(** h8 — the server the TCP service policies target. *)

val sensitive_subnet : Prefix.t
(** The protected server subnet 10.3.10.0/24. *)

val gateway_router : string
(** r1 — target of the careless-technician scenario. *)
