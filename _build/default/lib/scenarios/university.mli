(** The university evaluation network (paper Table 1, row 2): 13 routers
    (one of them the datacentre firewall), 17 hosts, 92 links.

    Layout: a redundant backbone (core1/core2, area 0) with three
    distribution routers and an internet edge; three OSPF stub areas hang
    off the distribution layer (area 1: CS+EE, area 2: Bio+Admin,
    area 3: dorms + the firewalled datacentre).  Each department has a
    pair of access switches (dual-homed trunks) carrying its VLANs; the
    SVIs live on the department's access router.  13 host-bearing subnets
    produce the ~175-policy matrix; fw1 guards the server subnets, which
    upgrades server-bound policies to waypoint policies. *)

open Heimdall_net
open Heimdall_control

val build : unit -> Network.t
(** Construct the healthy network (deterministic). *)

val policies : Network.t -> Heimdall_verify.Policy.t list
(** Mined policies (subnet ICMP matrix + TCP/80 to web1 + TCP/25 to
    mail1). *)

val issues : Network.t -> Heimdall_msp.Issue.t list
(** Three issues mirroring the enterprise set: [vlan] (dorm port on the
    wrong VLAN, root cause on a switch), [ospf] (area mismatch on acc5's
    uplinks), [isp] (edge renumbering). *)

val web_server : string
val mail_server : string
val firewall_node : string
val gateway_router : string
val sensitive_prefix : Prefix.t
(** The datacentre block 10.16.0.0/16 that fw1 protects. *)
