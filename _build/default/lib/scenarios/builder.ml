open Heimdall_net
open Heimdall_config
open Heimdall_control

type node_state = {
  kind : Topology.node_kind;
  mutable interfaces : Ast.interface list;  (* in creation order *)
  mutable vlans : (int * string) list;
  mutable acls : Acl.t list;
  mutable statics : Ast.static_route list;
  mutable ospf_networks : (Prefix.t * int) list;
  mutable ospf_router_id : Ipv4.t option;
  mutable originate : bool;
  mutable gateway : Ipv4.t option;
  mutable secrets : Ast.secret list;
}

type t = {
  nodes : (string, node_state) Hashtbl.t;
  mutable order : string list;  (* reversed creation order *)
  mutable links : (Topology.endpoint * Topology.endpoint) list;  (* reversed *)
  iface_counter : (string, int) Hashtbl.t;
  mutable p2p_counter : int;
}

let create () =
  {
    nodes = Hashtbl.create 64;
    order = [];
    links = [];
    iface_counter = Hashtbl.create 64;
    p2p_counter = 0;
  }

let node_state t name =
  match Hashtbl.find_opt t.nodes name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Builder: unknown node %s" name)

let add_node t name kind =
  if Hashtbl.mem t.nodes name then
    invalid_arg (Printf.sprintf "Builder: duplicate node %s" name);
  Hashtbl.replace t.nodes name
    {
      kind;
      interfaces = [];
      vlans = [];
      acls = [];
      statics = [];
      ospf_networks = [];
      ospf_router_id = None;
      originate = false;
      gateway = None;
      secrets = [];
    };
  t.order <- name :: t.order

let router t name = add_node t name Topology.Router
let switch t name = add_node t name Topology.Switch
let host t name = add_node t name Topology.Host
let firewall t name = add_node t name Topology.Firewall

let fresh_iface t node =
  ignore (node_state t node);
  let n = Option.value (Hashtbl.find_opt t.iface_counter node) ~default:0 in
  Hashtbl.replace t.iface_counter node (n + 1);
  Printf.sprintf "eth%d" n

let add_interface t node (iface : Ast.interface) =
  let s = node_state t node in
  if List.exists (fun (i : Ast.interface) -> i.if_name = iface.if_name) s.interfaces then
    invalid_arg (Printf.sprintf "Builder: duplicate interface %s on %s" iface.if_name node);
  s.interfaces <- s.interfaces @ [ iface ]

let add_ospf_network t node prefix area =
  let s = node_state t node in
  if not (List.exists (fun (p, _) -> Prefix.equal p prefix) s.ospf_networks) then
    s.ospf_networks <- s.ospf_networks @ [ (prefix, area) ]

let wire t a b = t.links <- (a, b) :: t.links

let p2p ?area ?cost t a b =
  let n = t.p2p_counter in
  t.p2p_counter <- n + 1;
  if n > 255 * 255 then invalid_arg "Builder: transit address space exhausted";
  let subnet = Prefix.of_string (Printf.sprintf "10.200.%d.%d/30" (n / 64) (n mod 64 * 4)) in
  let addr_a = Ifaddr.make (Prefix.host subnet 1) 30 in
  let addr_b = Ifaddr.make (Prefix.host subnet 2) 30 in
  let if_a = fresh_iface t a and if_b = fresh_iface t b in
  add_interface t a (Ast.interface ~addr:addr_a ?ospf_cost:cost ~description:("to " ^ b) if_a);
  add_interface t b (Ast.interface ~addr:addr_b ?ospf_cost:cost ~description:("to " ^ a) if_b);
  (match area with
  | Some area ->
      add_ospf_network t a subnet area;
      add_ospf_network t b subnet area
  | None -> ());
  wire t { Topology.node = a; iface = if_a } { Topology.node = b; iface = if_b };
  subnet

let p2p_bundle ?area ?cost t a b n =
  for _ = 1 to n do
    ignore (p2p ?area ?cost t a b)
  done

let unwired_l3 ?area t node addr =
  let iface = fresh_iface t node in
  add_interface t node (Ast.interface ~addr iface);
  (match area with
  | Some area -> add_ospf_network t node (Ifaddr.subnet addr) area
  | None -> ());
  iface

let vlan t node id name =
  let s = node_state t node in
  if not (List.mem_assoc id s.vlans) then s.vlans <- s.vlans @ [ (id, name) ]

let svi ?area t node id addr =
  vlan t node id (Printf.sprintf "vlan%d" id);
  add_interface t node (Ast.interface ~addr (Printf.sprintf "vlan%d" id));
  match area with
  | Some area -> add_ospf_network t node (Ifaddr.subnet addr) area
  | None -> ()

let access_link t ~dev ~peer ~vlan:v =
  vlan t dev v (Printf.sprintf "vlan%d" v);
  let dev_if = fresh_iface t dev in
  add_interface t dev
    (Ast.interface ~switchport:(Ast.Access v) ~description:("to " ^ peer) dev_if);
  let peer_if = fresh_iface t peer in
  add_interface t peer (Ast.interface ~description:("to " ^ dev) peer_if);
  wire t { Topology.node = dev; iface = dev_if } { Topology.node = peer; iface = peer_if }

let trunk_link t a b ~vlans:vs =
  List.iter
    (fun v ->
      vlan t a v (Printf.sprintf "vlan%d" v);
      vlan t b v (Printf.sprintf "vlan%d" v))
    vs;
  let if_a = fresh_iface t a and if_b = fresh_iface t b in
  add_interface t a (Ast.interface ~switchport:(Ast.Trunk vs) ~description:("to " ^ b) if_a);
  add_interface t b (Ast.interface ~switchport:(Ast.Trunk vs) ~description:("to " ^ a) if_b);
  wire t { Topology.node = a; iface = if_a } { Topology.node = b; iface = if_b }

let host_addr t name addr ~gateway =
  let s = node_state t name in
  s.gateway <- Some gateway;
  match s.interfaces with
  | [] ->
      (* Unwired host: give it a standalone eth0. *)
      add_interface t name (Ast.interface ~addr (fresh_iface t name))
  | (i : Ast.interface) :: rest -> s.interfaces <- { i with addr = Some addr } :: rest

let attach_host t ~host_name ~dev ~vlan:v ~addr ~gateway =
  host t host_name;
  access_link t ~dev ~peer:host_name ~vlan:v;
  host_addr t host_name addr ~gateway

let routed_host ?area t ~host_name ~dev ~subnet ~host_octet =
  host t host_name;
  let len = Prefix.length subnet in
  let dev_addr = Ifaddr.make (Prefix.host subnet 1) len in
  let host_ip = Ifaddr.make (Prefix.host subnet host_octet) len in
  let dev_if = fresh_iface t dev and host_if = fresh_iface t host_name in
  add_interface t dev (Ast.interface ~addr:dev_addr ~description:("to " ^ host_name) dev_if);
  add_interface t host_name (Ast.interface ~addr:host_ip ~description:("to " ^ dev) host_if);
  (match area with
  | Some area -> add_ospf_network t dev subnet area
  | None -> ());
  (node_state t host_name).gateway <- Some (Ifaddr.address dev_addr);
  wire t { Topology.node = dev; iface = dev_if } { Topology.node = host_name; iface = host_if }

let static_route t node prefix next_hop =
  let s = node_state t node in
  s.statics <- s.statics @ [ { Ast.sr_prefix = prefix; sr_next_hop = next_hop; sr_distance = 1 } ]

let default_originate t node = (node_state t node).originate <- true

let acl t node a =
  let s = node_state t node in
  s.acls <- s.acls @ [ a ]

let bind_acl t ~node ~iface ~dir name =
  let s = node_state t node in
  s.interfaces <-
    List.map
      (fun (i : Ast.interface) ->
        if i.if_name = iface then
          match dir with
          | `In -> { i with acl_in = Some name }
          | `Out -> { i with acl_out = Some name }
        else i)
      s.interfaces

let secret t node sec =
  let s = node_state t node in
  s.secrets <- s.secrets @ [ sec ]

let ospf_router_id t node id = (node_state t node).ospf_router_id <- Some id
let ospf_network t node prefix area = add_ospf_network t node prefix area

let set_switchport t ~node ~iface sp =
  let s = node_state t node in
  s.interfaces <-
    List.map
      (fun (i : Ast.interface) ->
        if i.if_name = iface then { i with switchport = Some sp } else i)
      s.interfaces

let find_iface_to t a b =
  List.rev t.links
  |> List.find_map (fun ((x : Topology.endpoint), (y : Topology.endpoint)) ->
         if x.node = a && y.node = b then Some x.iface
         else if y.node = a && x.node = b then Some y.iface
         else None)

let build t =
  let names = List.rev t.order in
  let topo =
    List.fold_left
      (fun topo name -> Topology.add_node name (node_state t name).kind topo)
      Topology.empty names
  in
  let topo =
    List.fold_left (fun topo (a, b) -> Topology.add_link a b topo) topo (List.rev t.links)
  in
  let configs =
    List.map
      (fun name ->
        let s = node_state t name in
        let ospf =
          if s.ospf_networks = [] && not s.originate then None
          else
            Some
              {
                Ast.router_id = s.ospf_router_id;
                networks = s.ospf_networks;
                default_originate = s.originate;
              }
        in
        ( name,
          Ast.make ~interfaces:s.interfaces ~vlans:s.vlans ~acls:s.acls
            ~static_routes:s.statics ?ospf ?default_gateway:s.gateway ~secrets:s.secrets
            name ))
      names
  in
  Network.make topo configs
