(** A longitudinal MSP campaign simulation: a stream of tickets, a small
    fraction of them handled by a compromised technician account, replayed
    under both access models.

    This extends the paper's episodic experiments with the question an
    enterprise actually asks: {e over a quarter of outsourced operations,
    how much damage does each model accumulate}?  Incidents are generated
    from a seeded in-repo PRNG, so campaigns are fully reproducible. *)

open Heimdall_control

type event_kind =
  | Honest_repair  (** A real fault, fixed by the prepared script. *)
  | Exfiltration  (** APT10-style credential harvest attempt. *)
  | Rogue_change  (** Malicious ACL opening of the protected subnet. *)
  | Careless  (** Fat-fingered erase on a gateway. *)

val event_kind_to_string : event_kind -> string

type event = { index : int; kind : event_kind }

type model = Rmm_model | Heimdall_model

val model_to_string : model -> string

type tally = {
  model : model;
  tickets : int;
  repaired : int;  (** Honest repairs that resolved the fault. *)
  secrets_leaked : int;  (** Distinct secret values exposed, summed. *)
  policies_damaged : int;  (** Newly violated policies reaching production. *)
  attacks_blocked : int;  (** Malicious/careless events stopped. *)
}

val render : tally list -> string

val events : seed:int -> tickets:int -> malicious_pct:int -> event list
(** A reproducible event stream: [malicious_pct]% of events are drawn
    uniformly from the three hostile kinds, the rest are honest repairs. *)

val run : ?seed:int -> ?tickets:int -> ?malicious_pct:int -> Network.t ->
  Heimdall_verify.Policy.t list -> Heimdall_msp.Issue.t list -> tally list
(** Replay the same event stream under both models on the given network
    (defaults: seed 42, 40 tickets, 20% malicious).  Honest repairs pick
    (round-robin) from the provided issues. *)
