open Heimdall_net
open Heimdall_config
open Heimdall_control
open Heimdall_msp

let web_server = "web1"
let mail_server = "mail1"
let firewall_node = "fw1"
let gateway_router = "edge1"
let sensitive_prefix = Prefix.of_string "10.16.0.0/16"

let p = Prefix.of_string
let ia = Ifaddr.of_string
let ip = Ipv4.of_string

(* Departments: access router, its two switches, its VLANs with subnets
   and hosts: (vlan, subnet, [host names]). *)
type dept = {
  acc : string;
  sw_a : string;
  sw_b : string;
  area : int;
  vlans : (int * string * (string * int) list) list;
      (* vlan id, subnet string, hosts with their last octet *)
}

let departments =
  [
    {
      acc = "acc1";
      sw_a = "sw1a";
      sw_b = "sw1b";
      area = 1;
      vlans =
        [
          (10, "10.11.10.0/24", [ ("cs1", 11); ("cs2", 12) ]);
          (11, "10.11.11.0/24", [ ("cs3", 11) ]);
          (12, "10.11.12.0/24", [ ("prn1", 11) ]);
        ];
    };
    {
      acc = "acc2";
      sw_a = "sw2a";
      sw_b = "sw2b";
      area = 1;
      vlans =
        [
          (20, "10.12.20.0/24", [ ("ee1", 11); ("ee2", 12) ]);
          (21, "10.12.21.0/24", [ ("ee3", 11) ]);
        ];
    };
    {
      acc = "acc3";
      sw_a = "sw3a";
      sw_b = "sw3b";
      area = 2;
      vlans =
        [
          (30, "10.13.30.0/24", [ ("bio1", 11) ]);
          (31, "10.13.31.0/24", [ ("bio2", 11) ]);
        ];
    };
    {
      acc = "acc4";
      sw_a = "sw4a";
      sw_b = "sw4b";
      area = 2;
      vlans =
        [
          (40, "10.14.40.0/24", [ ("adm1", 11) ]);
          (41, "10.14.41.0/24", [ ("fin1", 11) ]);
        ];
    };
    {
      acc = "acc5";
      sw_a = "sw5a";
      sw_b = "sw5b";
      area = 3;
      vlans =
        [
          (50, "10.15.50.0/24", [ ("dorm1", 11); ("dorm2", 12) ]);
          (51, "10.15.51.0/24", [ ("dorm3", 11) ]);
        ];
    };
    {
      acc = "acc6";
      sw_a = "sw6a";
      sw_b = "sw6b";
      area = 3;
      vlans =
        [
          (60, "10.16.60.0/24", [ ("web1", 11); ("mail1", 12) ]);
          (61, "10.16.61.0/24", [ ("bak1", 11) ]);
        ];
    };
  ]

let build () =
  let b = Builder.create () in
  List.iter (Builder.router b)
    [ "core1"; "core2"; "dist1"; "dist2"; "dist3"; "edge1" ];
  Builder.firewall b "fw1";
  List.iter (fun d -> Builder.router b d.acc) departments;
  List.iter
    (fun d ->
      Builder.switch b d.sw_a;
      Builder.switch b d.sw_b)
    departments;
  (* Backbone (area 0). *)
  Builder.p2p_bundle ~area:0 b "core1" "core2" 4;
  List.iter
    (fun dist ->
      Builder.p2p_bundle ~area:0 b dist "core1" 2;
      Builder.p2p_bundle ~area:0 b dist "core2" 2)
    [ "dist1"; "dist2"; "dist3" ];
  ignore (Builder.p2p ~area:0 b "dist1" "dist2");
  ignore (Builder.p2p ~area:0 b "dist2" "dist3");
  ignore (Builder.p2p ~area:0 b "dist1" "dist3");
  Builder.p2p_bundle ~area:0 b "edge1" "core1" 3;
  Builder.p2p_bundle ~area:0 b "edge1" "core2" 3;
  (* Area 1: CS + EE behind dist1. *)
  Builder.p2p_bundle ~area:1 b "acc1" "dist1" 2;
  Builder.p2p_bundle ~area:1 b "acc2" "dist1" 2;
  ignore (Builder.p2p ~area:1 b "acc1" "acc2");
  (* Area 2: Bio + Admin behind dist2. *)
  Builder.p2p_bundle ~area:2 b "acc3" "dist2" 2;
  Builder.p2p_bundle ~area:2 b "acc4" "dist2" 2;
  ignore (Builder.p2p ~area:2 b "acc3" "acc4");
  (* Area 3: dorms + firewalled datacentre behind dist3. *)
  Builder.p2p_bundle ~area:3 b "acc5" "dist3" 2;
  Builder.p2p_bundle ~area:3 b "fw1" "dist3" 2;
  Builder.p2p_bundle ~area:3 b "acc6" "fw1" 2;
  (* Dark-fibre backups, not in the IGP. *)
  ignore (Builder.p2p b "acc2" "acc3");
  ignore (Builder.p2p b "acc4" "acc5");
  Builder.p2p_bundle b "acc5" "dist2" 2;
  (* Departments: SVIs on the access router, dual-homed switch pair. *)
  List.iter
    (fun d ->
      let vlan_ids = List.map (fun (v, _, _) -> v) d.vlans in
      List.iter
        (fun (v, subnet, _) ->
          let sn = p subnet in
          Builder.svi ~area:d.area b d.acc v (Ifaddr.make (Prefix.host sn 1) (Prefix.length sn)))
        d.vlans;
      Builder.trunk_link b d.sw_a d.acc ~vlans:vlan_ids;
      Builder.trunk_link b d.sw_a d.acc ~vlans:vlan_ids;
      Builder.trunk_link b d.sw_b d.acc ~vlans:vlan_ids;
      Builder.trunk_link b d.sw_b d.acc ~vlans:vlan_ids;
      Builder.trunk_link b d.sw_a d.sw_b ~vlans:vlan_ids;
      (* Hosts alternate between the two switches. *)
      List.iter
        (fun (v, subnet, hosts) ->
          let sn = p subnet in
          List.iteri
            (fun idx (host_name, octet) ->
              let sw = if idx mod 2 = 0 then d.sw_a else d.sw_b in
              Builder.attach_host b ~host_name ~dev:sw ~vlan:v
                ~addr:(Ifaddr.make (Prefix.host sn octet) (Prefix.length sn))
                ~gateway:(Prefix.host sn 1))
            hosts)
        d.vlans)
    departments;
  (* Datacentre protection on fw1 (inbound from the distribution side). *)
  let dc_acl =
    Acl.make "DC_PROT"
      [
        Acl.rule ~proto:(Acl.Proto Flow.Icmp) ~seq:10 Acl.Deny (p "10.15.50.0/24")
          sensitive_prefix;
        Acl.rule ~proto:(Acl.Proto Flow.Icmp) ~seq:20 Acl.Deny (p "10.15.51.0/24")
          sensitive_prefix;
        Acl.rule ~proto:(Acl.Proto Flow.Tcp) ~dst_port:(Acl.Eq 25) ~seq:30 Acl.Deny
          (p "10.15.0.0/16") sensitive_prefix;
        Acl.rule ~seq:40 Acl.Permit Prefix.any Prefix.any;
      ]
  in
  Builder.acl b "fw1" dc_acl;
  (* fw1's interfaces towards dist3 are the first two created on it. *)
  List.iteri
    (fun i _ -> Builder.bind_acl b ~node:"fw1" ~iface:(Printf.sprintf "eth%d" i) ~dir:`In "DC_PROT")
    [ (); () ];
  (* Internet edge. *)
  ignore (Builder.unwired_l3 b "edge1" (ia "203.0.113.2/30"));
  Builder.static_route b "edge1" Prefix.any (ip "203.0.113.1");
  Builder.default_originate b "edge1";
  (* Router IDs and secrets. *)
  let routers =
    [ "core1"; "core2"; "dist1"; "dist2"; "dist3"; "edge1"; "fw1" ]
    @ List.map (fun d -> d.acc) departments
  in
  List.iteri
    (fun i r ->
      Builder.ospf_router_id b r (Ipv4.of_octets 2 2 2 (i + 1));
      Builder.secret b r (Ast.Enable_secret (Printf.sprintf "uni-enable-%s-3d7c" r));
      Builder.secret b r (Ast.Snmp_community (Printf.sprintf "uni-snmp-%s-e90f" r)))
    routers;
  Builder.secret b "edge1" (Ast.Ipsec_key ("uni-ipsec-psk-77aa21", ip "203.0.113.1"));
  List.iter
    (fun d ->
      List.iter
        (fun (_, _, hosts) ->
          List.iter
            (fun (h, _) ->
              Builder.secret b h (Ast.User_password ("svc", Printf.sprintf "uni-pw-%s-10fe" h)))
            hosts)
        d.vlans)
    departments;
  Builder.build b

let policies net =
  let dp = Dataplane.compute net in
  Heimdall_verify.Spec_miner.mine
    ~options:
      {
        Heimdall_verify.Spec_miner.mine_icmp = true;
        tcp_services = [ (web_server, 80); (mail_server, 25) ];
      }
    dp

(* --------------------------------------------------------------- *)
(* Issues                                                           *)
(* --------------------------------------------------------------- *)

let inject_changes changes net =
  match Network.apply_changes changes net with
  | Ok net -> net
  | Error m -> invalid_arg ("university issue injection failed: " ^ m)

let port_between net a bn =
  List.find_map
    (fun (l : Topology.link) ->
      if l.a.node = a && l.b.node = bn then Some l.a.iface
      else if l.b.node = a && l.a.node = bn then Some l.b.iface
      else None)
    (Topology.links (Network.topology net))

let ports_between net a bn =
  List.filter_map
    (fun (l : Topology.link) ->
      if l.a.node = a && l.b.node = bn then Some l.a.iface
      else if l.b.node = a && l.a.node = bn then Some l.b.iface
      else None)
    (Topology.links (Network.topology net))

let vlan_issue net =
  (* dorm1's access port on sw5a falls into the wrong VLAN. *)
  let port =
    match port_between net "sw5a" "dorm1" with
    | Some i -> i
    | None -> invalid_arg "university: dorm1 port not found"
  in
  {
    Issue.name = "vlan";
    ticket =
      Ticket.make ~id:"UNI-001" ~kind:Ticket.Vlan
        ~description:"dorm1 lost all connectivity after a port move" ~endpoints:[ "dorm1"; "dorm3" ];
    inject =
      inject_changes
        [
          Change.v "sw5a"
            (Change.Set_switchport { iface = port; switchport = Some (Ast.Access 51) });
        ];
    root_cause = "sw5a";
    fix_commands =
      [
        "connect dorm1";
        "show ip route";
        "ping 10.15.50.1";
        "connect acc5";
        "show vlan";
        "show ip route";
        "connect sw5a";
        "show interfaces";
        "show running-config";
        Printf.sprintf "configure interface %s switchport access vlan 50" port;
        "connect dorm1";
        "ping 10.15.50.1";
        "ping 10.15.51.11";
      ];
    probe = Flow.icmp (ip "10.15.50.11") (ip "10.15.51.11");
  }

let ospf_issue net =
  let uplinks = ports_between net "acc5" "dist3" in
  if List.length uplinks <> 2 then invalid_arg "university: acc5 uplinks not found";
  {
    Issue.name = "ospf";
    ticket =
      Ticket.make ~id:"UNI-002" ~kind:Ticket.Routing
        ~description:"the dorm network cannot reach the campus (OSPF neighbours down)"
        ~endpoints:[ "dorm1"; "cs1" ];
    inject =
      inject_changes
        (List.map
           (fun iface -> Change.v "acc5" (Change.Set_ospf_area { iface; area = Some 1 }))
           uplinks);
    root_cause = "acc5";
    fix_commands =
      ([
         "connect dorm1";
         "ping 10.11.10.11";
         "connect acc5";
         "show ip ospf neighbors";
         "show ip route";
         "show running-config";
       ]
      @ List.map
          (fun iface -> Printf.sprintf "configure interface %s ospf area 3" iface)
          uplinks
      @ [ "show ip ospf neighbors"; "ping 10.11.10.11" ]);
    probe = Flow.icmp (ip "10.15.50.11") (ip "10.11.10.11");
  }

let isp_issue net =
  (* edge1's unwired upstream port: the only addressed interface with no
     cable. *)
  let ext =
    let cfg = Network.config_exn "edge1" net in
    let wired = Topology.interfaces_of "edge1" (Network.topology net) in
    match
      List.find_opt
        (fun (i : Ast.interface) -> i.addr <> None && not (List.mem i.if_name wired))
        cfg.interfaces
    with
    | Some i -> i.if_name
    | None -> invalid_arg "university: edge1 upstream port not found"
  in
  {
    Issue.name = "isp";
    ticket =
      Ticket.make ~id:"UNI-003" ~kind:Ticket.External
        ~description:"campus uplink migration to the new provider block 198.51.100.0/30"
        ~endpoints:[ "edge1"; "cs1" ];
    inject =
      inject_changes
        [ Change.v "edge1" (Change.Set_interface_enabled { iface = ext; enabled = false }) ];
    root_cause = "edge1";
    fix_commands =
      [
        "connect edge1";
        "show interfaces";
        Printf.sprintf "configure interface %s ip address 198.51.100.2/30" ext;
        Printf.sprintf "configure interface %s no shutdown" ext;
        "configure no ip route 0.0.0.0/0 203.0.113.1";
        "configure ip route 0.0.0.0/0 198.51.100.1";
        "show ip route";
      ];
    probe = Flow.icmp (ip "10.11.10.11") (ip "198.51.100.2");
  }

let issues net = [ vlan_issue net; ospf_issue net; isp_issue net ]
