lib/scenarios/builder.mli: Acl Ast Heimdall_config Heimdall_control Heimdall_net Ifaddr Ipv4 Network Prefix
