lib/scenarios/builder.ml: Acl Ast Hashtbl Heimdall_config Heimdall_control Heimdall_net Ifaddr Ipv4 List Network Option Prefix Printf Topology
