lib/scenarios/experiments.mli: Campaign Heimdall_control Heimdall_verify Metrics Network
