lib/scenarios/enterprise.mli: Heimdall_control Heimdall_msp Heimdall_net Heimdall_verify Network Prefix
