lib/scenarios/campaign.mli: Heimdall_control Heimdall_msp Heimdall_verify Network
