lib/scenarios/metrics.mli: Heimdall_control Heimdall_net Heimdall_verify Network Policy Topology
