open Heimdall_net
open Heimdall_config
open Heimdall_control
open Heimdall_msp

let web_server = "h8"
let sensitive_subnet = Prefix.of_string "10.3.10.0/24"
let gateway_router = "r1"

let p = Prefix.of_string
let ia = Ifaddr.of_string
let ip = Ipv4.of_string

let build () =
  let b = Builder.create () in
  List.iter (Builder.router b) [ "r1"; "r2"; "r3"; "r4"; "r5"; "r6"; "r7"; "r8"; "r9" ];
  (* Core and distribution transit links (area 0). *)
  let area = 0 in
  ignore (Builder.p2p ~area b "r1" "r2");
  ignore (Builder.p2p ~area b "r1" "r3");
  ignore (Builder.p2p ~area b "r2" "r3");
  ignore (Builder.p2p ~area b "r2" "r4");
  ignore (Builder.p2p ~area b "r2" "r5");
  ignore (Builder.p2p ~area b "r3" "r6");
  ignore (Builder.p2p ~area b "r3" "r7");
  ignore (Builder.p2p ~area b "r4" "r5");
  ignore (Builder.p2p ~area b "r4" "r6");
  ignore (Builder.p2p ~area b "r2" "r8");
  ignore (Builder.p2p ~area b "r3" "r8");
  ignore (Builder.p2p ~area b "r1" "r9");
  (* Backup link r6-r7, deliberately outside the IGP. *)
  ignore (Builder.p2p b "r6" "r7");
  (* Office subnets. *)
  Builder.svi ~area b "r4" 10 (ia "10.1.10.1/24");
  Builder.vlan b "r4" 30 "guests";
  Builder.attach_host b ~host_name:"h1" ~dev:"r4" ~vlan:10 ~addr:(ia "10.1.10.11/24")
    ~gateway:(ip "10.1.10.1");
  Builder.attach_host b ~host_name:"h2" ~dev:"r4" ~vlan:10 ~addr:(ia "10.1.10.12/24")
    ~gateway:(ip "10.1.10.1");
  Builder.svi ~area b "r5" 20 (ia "10.1.20.1/24");
  Builder.attach_host b ~host_name:"h3" ~dev:"r5" ~vlan:20 ~addr:(ia "10.1.20.11/24")
    ~gateway:(ip "10.1.20.1");
  Builder.attach_host b ~host_name:"h4" ~dev:"r5" ~vlan:20 ~addr:(ia "10.1.20.12/24")
    ~gateway:(ip "10.1.20.1");
  Builder.svi ~area b "r6" 30 (ia "10.2.10.1/24");
  Builder.attach_host b ~host_name:"h5" ~dev:"r6" ~vlan:30 ~addr:(ia "10.2.10.11/24")
    ~gateway:(ip "10.2.10.1");
  Builder.attach_host b ~host_name:"h6" ~dev:"r6" ~vlan:30 ~addr:(ia "10.2.10.12/24")
    ~gateway:(ip "10.2.10.1");
  Builder.routed_host ~area b ~host_name:"h7" ~dev:"r7" ~subnet:(p "10.2.20.0/24")
    ~host_octet:11;
  (* Server subnet behind r8, protected by an ACL on the uplinks. *)
  Builder.svi ~area b "r8" 40 (ia "10.3.10.1/24");
  Builder.attach_host b ~host_name:"h8" ~dev:"r8" ~vlan:40 ~addr:(ia "10.3.10.11/24")
    ~gateway:(ip "10.3.10.1");
  Builder.attach_host b ~host_name:"h9" ~dev:"r8" ~vlan:40 ~addr:(ia "10.3.10.12/24")
    ~gateway:(ip "10.3.10.1");
  let srv_acl =
    Acl.make "SRV_PROT"
      [
        Acl.rule ~proto:(Acl.Proto Flow.Icmp) ~seq:10 Acl.Deny (p "10.1.10.0/24")
          sensitive_subnet;
        Acl.rule ~seq:20 Acl.Permit Prefix.any Prefix.any;
      ]
  in
  Builder.acl b "r8" srv_acl;
  (* The uplink interfaces are the first two created on r8. *)
  List.iter
    (fun peer ->
      match Builder.find_iface_to b "r8" peer with
      | Some iface -> Builder.bind_acl b ~node:"r8" ~iface ~dir:`In "SRV_PROT"
      | None -> invalid_arg "enterprise: r8 uplink not found")
    [ "r2"; "r3" ];
  (* Management services subnet on r9 (no host). *)
  ignore (Builder.unwired_l3 ~area b "r9" (ia "10.9.0.1/24"));
  (* Internet edge: upstream port + static default, redistributed. *)
  ignore (Builder.unwired_l3 b "r1" (ia "203.0.113.2/30"));
  Builder.static_route b "r1" Prefix.any (ip "203.0.113.1");
  Builder.default_originate b "r1";
  (* Router IDs and secrets. *)
  List.iteri
    (fun i r ->
      Builder.ospf_router_id b r (Ipv4.of_octets 1 1 1 (i + 1));
      Builder.secret b r (Ast.Enable_secret (Printf.sprintf "ent-enable-%s-9f3a" r));
      Builder.secret b r (Ast.Snmp_community (Printf.sprintf "ent-snmp-%s-71bd" r)))
    [ "r1"; "r2"; "r3"; "r4"; "r5"; "r6"; "r7"; "r8"; "r9" ];
  Builder.secret b "r1" (Ast.Ipsec_key ("ent-ipsec-psk-c4f1e2", ip "203.0.113.1"));
  List.iter
    (fun h -> Builder.secret b h (Ast.User_password ("admin", Printf.sprintf "ent-pw-%s-55aa" h)))
    [ "h1"; "h2"; "h3"; "h4"; "h5"; "h6"; "h7"; "h8"; "h9" ];
  Builder.build b

let policies net =
  let dp = Dataplane.compute net in
  Heimdall_verify.Spec_miner.mine
    ~options:{ Heimdall_verify.Spec_miner.mine_icmp = true; tcp_services = [ (web_server, 80) ] }
    dp

(* --------------------------------------------------------------- *)
(* Issues (paper §5: vlan, ospf, isp on the enterprise network).    *)
(* --------------------------------------------------------------- *)

let inject_change node op net =
  match Network.apply_changes [ Change.v node op ] net with
  | Ok net -> net
  | Error m -> invalid_arg ("enterprise issue injection failed: " ^ m)

let vlan_issue net =
  (* h2's access port on r4 lands in the wrong VLAN. *)
  let port =
    match
      List.find_map
        (fun (l : Topology.link) ->
          if l.a.node = "r4" && l.b.node = "h2" then Some l.a.iface
          else if l.b.node = "r4" && l.a.node = "h2" then Some l.b.iface
          else None)
        (Topology.links (Network.topology net))
    with
    | Some i -> i
    | None -> invalid_arg "enterprise: h2 port on r4 not found"
  in
  {
    Issue.name = "vlan";
    ticket =
      Ticket.make ~id:"ENT-001" ~kind:Ticket.Vlan
        ~description:"h2 cannot reach the department printer h3 (or anything else)"
        ~endpoints:[ "h2"; "h3" ];
    inject =
      inject_change "r4"
        (Change.Set_switchport { iface = port; switchport = Some (Ast.Access 30) });
    root_cause = "r4";
    fix_commands =
      [
        "connect h2";
        "show ip route";
        "ping 10.1.10.1";
        "connect r4";
        "show vlan";
        "show interfaces";
        "show running-config";
        Printf.sprintf "configure interface %s switchport access vlan 10" port;
        "connect h2";
        "ping 10.1.10.1";
        "ping 10.1.20.11";
      ];
    probe = Flow.icmp (ip "10.1.10.12") (ip "10.1.20.11");
  }

let ospf_issue net =
  let uplink =
    (* r7's interface towards r3 — found from the topology. *)
    match
      List.find_map
        (fun (l : Topology.link) ->
          if l.a.node = "r7" && l.b.node = "r3" then Some l.a.iface
          else if l.b.node = "r7" && l.a.node = "r3" then Some l.b.iface
          else None)
        (Topology.links (Network.topology net))
    with
    | Some i -> i
    | None -> invalid_arg "enterprise: r7 uplink not found"
  in
  {
    Issue.name = "ospf";
    ticket =
      Ticket.make ~id:"ENT-002" ~kind:Ticket.Routing
        ~description:"office h7 lost connectivity to the rest of the network"
        ~endpoints:[ "h7"; "h1" ];
    inject = inject_change "r7" (Change.Set_ospf_area { iface = uplink; area = Some 1 });
    root_cause = "r7";
    fix_commands =
      [
        "connect h7";
        "ping 10.1.10.11";
        "connect r7";
        "show ip ospf neighbors";
        "show ip route";
        "show running-config";
        Printf.sprintf "configure interface %s ospf area 0" uplink;
        "show ip ospf neighbors";
        "ping 10.1.10.11";
      ];
    probe = Flow.icmp (ip "10.2.20.11") (ip "10.1.10.11");
  }

let isp_issue net =
  ignore net;
  {
    Issue.name = "isp";
    ticket =
      Ticket.make ~id:"ENT-003" ~kind:Ticket.External
        ~description:
          "migrate the uplink to the new ISP block 198.51.100.0/30 (old circuit is down)"
        ~endpoints:[ "r1"; "h1" ];
    inject =
      (fun net ->
        inject_change "r1"
          (Change.Set_interface_enabled { iface = "eth3"; enabled = false })
          net);
    root_cause = "r1";
    fix_commands =
      [
        "connect r1";
        "show interfaces";
        "configure interface eth3 ip address 198.51.100.2/30";
        "configure interface eth3 no shutdown";
        "configure no ip route 0.0.0.0/0 203.0.113.1";
        "configure ip route 0.0.0.0/0 198.51.100.1";
        "show ip route";
      ];
    probe = Flow.icmp (ip "10.1.10.11") (ip "198.51.100.2");
  }

let issues net = [ vlan_issue net; ospf_issue net; isp_issue net ]
