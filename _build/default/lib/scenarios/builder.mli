(** A small imperative DSL for assembling evaluation networks: automatic
    interface naming, automatic /30 transit addressing, OSPF network
    statements collected per router, hosts wired to access ports with
    matching default gateways.  Both Table-1 networks are written against
    this builder. *)

open Heimdall_net
open Heimdall_config
open Heimdall_control

type t

val create : unit -> t

(** {2 Nodes} *)

val router : t -> string -> unit
val switch : t -> string -> unit
val host : t -> string -> unit
val firewall : t -> string -> unit

(** {2 Layer-3 plumbing} *)

val p2p : ?area:int -> ?cost:int -> t -> string -> string -> Prefix.t
(** Wire a new point-to-point link between two routers: allocates the next
    transit /30 (10.200.k.0/30), creates one fresh interface on each end
    with .1/.2, and (when [area] is given) marks the subnet for OSPF in
    that area on both routers.  Returns the allocated subnet. *)

val p2p_bundle : ?area:int -> ?cost:int -> t -> string -> string -> int -> unit
(** [n] parallel {!p2p} links (a redundant bundle). *)

val unwired_l3 : ?area:int -> t -> string -> Ifaddr.t -> string
(** Add an addressed interface with no cable (upstream ports, loopback-ish
    service subnets).  Returns the interface name. *)

(** {2 Layer-2 / VLANs} *)

val vlan : t -> string -> int -> string -> unit
(** Define a VLAN (id, name) on a device. *)

val svi : ?area:int -> t -> string -> int -> Ifaddr.t -> unit
(** Add an SVI ([interface vlan<id>]) with the given address; defines the
    VLAN implicitly (named "vlan<id>") if not already defined. *)

val access_link : t -> dev:string -> peer:string -> vlan:int -> unit
(** Wire [peer]'s next fresh interface to a fresh access port (switchport
    access [vlan]) on [dev]. *)

val trunk_link : t -> string -> string -> vlans:int list -> unit
(** Wire a trunk between two devices (switchport trunk on both ends). *)

val host_addr : t -> string -> Ifaddr.t -> gateway:Ipv4.t -> unit
(** Give a host its address and default gateway (interface eth0; the host
    must be wired with {!access_link} or {!p2p} separately — use
    {!attach_host} for the common case). *)

val attach_host :
  t -> host_name:string -> dev:string -> vlan:int -> addr:Ifaddr.t -> gateway:Ipv4.t -> unit
(** Declare the host, wire it to an access port on [dev], assign its
    address and gateway. *)

val routed_host :
  ?area:int -> t -> host_name:string -> dev:string -> subnet:Prefix.t -> host_octet:int -> unit
(** Declare the host and wire it to a routed port on [dev]: the device
    side gets [subnet].1/len (OSPF-announced when [area] is given), the
    host gets [subnet].[host_octet]/len with the device as gateway. *)

(** {2 Config extras} *)

val static_route : t -> string -> Prefix.t -> Ipv4.t -> unit
val default_originate : t -> string -> unit
val acl : t -> string -> Acl.t -> unit
val bind_acl : t -> node:string -> iface:string -> dir:[ `In | `Out ] -> string -> unit
val secret : t -> string -> Ast.secret -> unit
val ospf_router_id : t -> string -> Ipv4.t -> unit
val ospf_network : t -> string -> Prefix.t -> int -> unit
(** Explicitly add an OSPF network statement (normally done by [p2p]/[svi]). *)

val set_switchport : t -> node:string -> iface:string -> Ast.switchport -> unit

val fresh_iface : t -> string -> string
(** Allocate the next interface name ("eth<N>") on a node. *)

val find_iface_to : t -> string -> string -> string option
(** [find_iface_to t a b] is the name of the first of [a]'s interfaces
    cabled to [b], if any. *)

val build : t -> Network.t
(** Materialise topology + configs.  @raise Invalid_argument on
    inconsistent builder state. *)
