lib/sdn/controller.mli: Acl Fabric Heimdall_net
