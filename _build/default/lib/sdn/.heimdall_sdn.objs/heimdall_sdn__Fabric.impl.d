lib/sdn/fabric.ml: Flow Heimdall_net Int Ipv4 List Map Option Printf Rule String Topology
