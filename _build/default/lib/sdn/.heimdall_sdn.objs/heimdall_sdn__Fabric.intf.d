lib/sdn/fabric.mli: Flow Heimdall_net Ipv4 Rule Topology
