lib/sdn/twin_sdn.ml: Controller Fabric Heimdall_enforcer Heimdall_net Heimdall_privilege List Printf Privilege Rule String
