lib/sdn/controller.ml: Acl Fabric Flow Graph Heimdall_net List Prefix Printf Rule Topology
