lib/sdn/rule.mli: Acl Flow Heimdall_net Prefix
