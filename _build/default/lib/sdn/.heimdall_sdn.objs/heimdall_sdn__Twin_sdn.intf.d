lib/sdn/twin_sdn.mli: Controller Fabric Flow Heimdall_enforcer Heimdall_net Heimdall_privilege Privilege Rule
