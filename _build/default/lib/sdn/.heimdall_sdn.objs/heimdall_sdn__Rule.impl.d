lib/sdn/rule.ml: Acl Flow Heimdall_net Prefix Printf
