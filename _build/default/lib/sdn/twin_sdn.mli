(** The Heimdall workflow transposed to an SDN fabric: a technician edits
    flow rules on a twin copy under a [Privilege_msp]; the enforcer-style
    verification re-checks the controller's intents before the new tables
    are accepted; everything is audited.

    SDN privilege actions (evaluated with the same engine; they are not
    part of the legacy-device catalog, so specs for SDN sessions are built
    programmatically):
    - ["sdn.show"]  — read a switch's table
    - ["sdn.flow"]  — install/remove rules
    - ["sdn.diag"]  — trace flows *)

open Heimdall_net
open Heimdall_privilege

type t

val open_session :
  ?technician:string -> privilege:Privilege.t -> Fabric.t -> t
(** Work on a twin copy of the fabric; the original is never touched. *)

val show_table : t -> string -> (string, string) result
val install : t -> string -> Rule.t -> (unit, string) result
val uninstall : t -> string -> Rule.t -> (unit, string) result
val trace : t -> Flow.t -> (Fabric.result, string) result

val fabric : t -> Fabric.t
(** The twin's current state. *)

val audit : t -> Heimdall_enforcer.Audit.t

type outcome = {
  approved : bool;
  violated : Controller.intent list;  (** Intents newly broken, if any. *)
  updated : Fabric.t option;  (** The fabric to push, iff approved. *)
}

val verify : t -> baseline:Fabric.t -> intents:Controller.intent list -> outcome
(** Accept the twin's tables iff every intent that held on [baseline]
    still holds. *)

val allow_sdn :
  ?switches:string list -> unit -> Privilege.predicate list
(** Convenience: read+diag everywhere plus rule edits on the given
    switches (all switches if omitted). *)
