open Heimdall_net

type intent =
  | Connect of { src : string; dst : string }
  | Block of { src : string; dst : string; proto : Acl.proto_match }

let intent_to_string = function
  | Connect { src; dst } -> Printf.sprintf "connect %s <-> %s" src dst
  | Block { src; dst; proto } ->
      Printf.sprintf "block %s -> %s (%s)" src dst
        (match proto with Acl.Any_proto -> "any" | Acl.Proto p -> Flow.proto_to_string p)

let addr_of fabric host = List.assoc_opt host (Fabric.hosts fabric)

(* The port on [node] that faces [peer] (first wired match). *)
let port_towards topo node peer =
  List.find_map
    (fun (l : Topology.link) ->
      if l.a.node = node && l.b.node = peer then Some l.a.iface
      else if l.b.node = node && l.a.node = peer then Some l.b.iface
      else None)
    (Topology.links topo)

let path_rules fabric src dst =
  (* One direction: rules along the shortest path from src host to dst. *)
  let topo = Fabric.topology fabric in
  match (addr_of fabric src, addr_of fabric dst) with
  | Some src_addr, Some dst_addr -> (
      let g = Topology.to_graph topo in
      match Graph.shortest_path src dst g with
      | None -> []
      | Some (_, path) ->
          (* Walk consecutive switch elements; each forwards towards the
             next element on the path. *)
          let rec walk = function
            | a :: (b :: _ as rest) ->
                let here =
                  match Topology.node a topo with
                  | Some { Topology.kind = Topology.Switch; _ } -> (
                      match port_towards topo a b with
                      | Some port ->
                          [
                            ( a,
                              Rule.make ~priority:100
                                (Rule.matcher
                                   ~src:(Prefix.host_prefix src_addr)
                                   ~dst:(Prefix.host_prefix dst_addr)
                                   ())
                                (Rule.Forward port) );
                          ]
                      | None -> [])
                  | _ -> []
                in
                here @ walk rest
            | _ -> []
          in
          walk path)
  | _ -> []

let ingress_switch fabric host =
  let topo = Fabric.topology fabric in
  List.find_map
    (fun (l : Topology.link) ->
      if l.a.node = host then Some l.b.node
      else if l.b.node = host then Some l.a.node
      else None)
    (Topology.links topo)

let compile fabric intents =
  let cleared =
    List.fold_left (fun f sw -> Fabric.clear sw f) fabric (Fabric.switches fabric)
  in
  let with_connect =
    List.fold_left
      (fun f intent ->
        match intent with
        | Connect { src; dst } ->
            List.fold_left
              (fun f (sw, rule) -> Fabric.install sw rule f)
              f
              (path_rules fabric src dst @ path_rules fabric dst src)
        | Block _ -> f)
      cleared intents
  in
  List.fold_left
    (fun f intent ->
      match intent with
      | Block { src; dst; proto } -> (
          match (ingress_switch fabric src, addr_of fabric src, addr_of fabric dst) with
          | Some sw, Some src_addr, Some dst_addr ->
              Fabric.install sw
                (Rule.make ~priority:200
                   (Rule.matcher
                      ~src:(Prefix.host_prefix src_addr)
                      ~dst:(Prefix.host_prefix dst_addr)
                      ~proto ())
                   Rule.Drop)
                f
          | _ -> f)
      | Connect _ -> f)
    with_connect intents

let holds fabric = function
  | Connect { src; dst } -> (
      match (addr_of fabric src, addr_of fabric dst) with
      | Some a, Some b -> Fabric.reachable fabric ~src:a ~dst:b && Fabric.reachable fabric ~src:b ~dst:a
      | _ -> false)
  | Block { src; dst; proto } -> (
      match (addr_of fabric src, addr_of fabric dst) with
      | Some a, Some b ->
          let flow =
            match proto with
            | Acl.Proto Flow.Tcp -> Flow.tcp ~dst_port:80 a b
            | Acl.Proto Flow.Udp -> Flow.make ~proto:Flow.Udp a b
            | Acl.Proto Flow.Icmp | Acl.Any_proto -> Flow.icmp a b
          in
          (match Fabric.trace fabric flow with
          | Fabric.Delivered _ -> false
          | Fabric.Dropped _ -> true)
      | _ -> false)

let violations fabric intents = List.filter (fun i -> not (holds fabric i)) intents
