open Heimdall_privilege

type t = {
  technician : string;
  privilege : Privilege.t;
  mutable fabric : Fabric.t;
  mutable audit : Heimdall_enforcer.Audit.t;
}

let record t ~action ~resource ~detail ~verdict =
  t.audit <-
    Heimdall_enforcer.Audit.append ~actor:t.technician ~action ~resource ~detail ~verdict
      t.audit

let open_session ?(technician = "tech") ~privilege fabric =
  { technician; privilege; fabric; audit = Heimdall_enforcer.Audit.empty }

let fabric t = t.fabric
let audit t = t.audit

let guarded t ~action ~resource ~detail f =
  if Privilege.allows t.privilege (Privilege.request action resource) then begin
    record t ~action ~resource ~detail ~verdict:"allowed";
    f ()
  end
  else begin
    record t ~action ~resource ~detail ~verdict:"denied";
    Error (Printf.sprintf "permission denied: %s on %s" action resource)
  end

let show_table t sw =
  guarded t ~action:"sdn.show" ~resource:sw ~detail:"show table" (fun () ->
      if not (List.mem sw (Fabric.switches t.fabric)) then
        Error (Printf.sprintf "unknown switch %s" sw)
      else
        match Fabric.table sw t.fabric with
        | [] -> Ok "empty table\n"
        | rules ->
            Ok (String.concat "" (List.map (fun r -> Rule.to_string r ^ "\n") rules)))

let install t sw rule =
  guarded t ~action:"sdn.flow" ~resource:sw ~detail:("install " ^ Rule.to_string rule)
    (fun () ->
      match Fabric.install sw rule t.fabric with
      | f ->
          t.fabric <- f;
          Ok ()
      | exception Invalid_argument m -> Error m)

let uninstall t sw rule =
  guarded t ~action:"sdn.flow" ~resource:sw ~detail:("remove " ^ Rule.to_string rule)
    (fun () ->
      match Fabric.uninstall sw rule t.fabric with
      | f ->
          t.fabric <- f;
          Ok ()
      | exception Invalid_argument m -> Error m)

let trace t flow =
  guarded t ~action:"sdn.diag" ~resource:"fabric"
    ~detail:("trace " ^ Heimdall_net.Flow.to_string flow) (fun () ->
      Ok (Fabric.trace t.fabric flow))

type outcome = {
  approved : bool;
  violated : Controller.intent list;
  updated : Fabric.t option;
}

let verify t ~baseline ~intents =
  let held_before = List.filter (Controller.holds baseline) intents in
  let violated = List.filter (fun i -> not (Controller.holds t.fabric i)) held_before in
  let approved = violated = [] in
  record t ~action:"sdn.verify" ~resource:"fabric"
    ~detail:
      (Printf.sprintf "%d intents checked, %d violated" (List.length held_before)
         (List.length violated))
    ~verdict:(if approved then "approved" else "rejected");
  { approved; violated; updated = (if approved then Some t.fabric else None) }

let allow_sdn ?switches () =
  let flow_nodes = match switches with Some s -> s | None -> [ "*" ] in
  [
    Privilege.allow ~actions:[ "sdn.show"; "sdn.diag" ] ~nodes:[ "*" ] ();
    Privilege.allow ~actions:[ "sdn.flow" ] ~nodes:flow_nodes ();
  ]
