open Heimdall_net
module Smap = Map.Make (String)

type t = {
  topology : Topology.t;
  host_addrs : (string * Ipv4.t) list;
  tables : Rule.t list Smap.t;  (* sorted by priority desc *)
}

let make topology ~hosts =
  List.iter
    (fun (h, _) ->
      match Topology.node h topology with
      | Some { Topology.kind = Topology.Host; _ } -> ()
      | Some _ -> invalid_arg (Printf.sprintf "Fabric.make: %s is not a host" h)
      | None -> invalid_arg (Printf.sprintf "Fabric.make: unknown host %s" h))
    hosts;
  let tables =
    List.fold_left
      (fun acc n -> Smap.add n [] acc)
      Smap.empty
      (Topology.node_names ~kind:Topology.Switch topology)
  in
  { topology; host_addrs = hosts; tables }

let topology t = t.topology
let hosts t = t.host_addrs
let switches t = Smap.fold (fun n _ acc -> n :: acc) t.tables [] |> List.rev
let table sw t = Option.value (Smap.find_opt sw t.tables) ~default:[]

let sort_rules rules =
  List.stable_sort (fun (a : Rule.t) b -> Int.compare b.priority a.priority) rules

let install sw rule t =
  match Smap.find_opt sw t.tables with
  | None -> invalid_arg (Printf.sprintf "Fabric.install: unknown switch %s" sw)
  | Some rules -> { t with tables = Smap.add sw (sort_rules (rule :: rules)) t.tables }

let uninstall sw rule t =
  match Smap.find_opt sw t.tables with
  | None -> invalid_arg (Printf.sprintf "Fabric.uninstall: unknown switch %s" sw)
  | Some rules ->
      { t with
        tables = Smap.add sw (List.filter (fun r -> not (Rule.equal r rule)) rules) t.tables
      }

let clear sw t =
  match Smap.find_opt sw t.tables with
  | None -> invalid_arg (Printf.sprintf "Fabric.clear: unknown switch %s" sw)
  | Some _ -> { t with tables = Smap.add sw [] t.tables }

let rule_count t = Smap.fold (fun _ rs n -> n + List.length rs) t.tables 0

type drop_reason =
  | Table_miss of string
  | Rule_drop of string * Rule.t
  | Punted of string * Rule.t
  | No_port of string * string
  | Loop
  | Unknown_host of Ipv4.t

let drop_reason_to_string = function
  | Table_miss sw -> Printf.sprintf "table miss at %s" sw
  | Rule_drop (sw, r) -> Printf.sprintf "dropped at %s by [%s]" sw (Rule.to_string r)
  | Punted (sw, _) -> Printf.sprintf "punted to controller at %s" sw
  | No_port (sw, p) -> Printf.sprintf "forward to unwired port %s:%s" sw p
  | Loop -> "forwarding loop"
  | Unknown_host a -> Printf.sprintf "no host owns %s" (Ipv4.to_string a)

type result = Delivered of string list | Dropped of drop_reason * string list

let host_of_addr t addr =
  List.find_map
    (fun (h, a) -> if Ipv4.equal a addr then Some h else None)
    t.host_addrs

let lookup t sw ~in_port flow =
  List.find_opt (fun r -> Rule.matches r ~in_port flow) (table sw t)

let max_hops = 64

let trace t (flow : Flow.t) =
  match (host_of_addr t flow.src, host_of_addr t flow.dst) with
  | None, _ -> Dropped (Unknown_host flow.src, [])
  | _, None -> Dropped (Unknown_host flow.dst, [])
  | Some src_host, Some dst_host -> (
      (* The host emits on its single wired port. *)
      let first_hop =
        List.find_map
          (fun (l : Topology.link) ->
            if l.a.node = src_host then Some (l.b.node, l.b.iface)
            else if l.b.node = src_host then Some (l.a.node, l.a.iface)
            else None)
          (Topology.links t.topology)
      in
      match first_hop with
      | None -> Dropped (No_port (src_host, "unwired"), [ src_host ])
      | Some (node, in_port) ->
          let rec step node in_port path budget =
            let path = node :: path in
            if budget <= 0 then Dropped (Loop, List.rev path)
            else if node = dst_host then Delivered (List.rev path)
            else
              match Topology.node node t.topology with
              | Some { Topology.kind = Topology.Switch; _ } -> (
                  match lookup t node ~in_port flow with
                  | None -> Dropped (Table_miss node, List.rev path)
                  | Some ({ Rule.action = Rule.Drop; _ } as r) ->
                      Dropped (Rule_drop (node, r), List.rev path)
                  | Some ({ Rule.action = Rule.To_controller; _ } as r) ->
                      Dropped (Punted (node, r), List.rev path)
                  | Some { Rule.action = Rule.Forward port; _ } -> (
                      match
                        Topology.peer { Topology.node; iface = port } t.topology
                      with
                      | None -> Dropped (No_port (node, port), List.rev path)
                      | Some peer -> step peer.node peer.iface path (budget - 1)))
              | Some _ ->
                  (* A non-destination host swallows the packet. *)
                  Dropped (Unknown_host flow.dst, List.rev path)
              | None -> Dropped (No_port (node, in_port), List.rev path)
          in
          step node in_port [ src_host ] max_hops)

let reachable t ~src ~dst =
  match trace t (Flow.icmp src dst) with Delivered _ -> true | Dropped _ -> false
