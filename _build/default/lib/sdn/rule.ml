open Heimdall_net

type matcher = {
  in_port : string option;
  src : Prefix.t;
  dst : Prefix.t;
  proto : Acl.proto_match;
}

let any = { in_port = None; src = Prefix.any; dst = Prefix.any; proto = Acl.Any_proto }

let matcher ?in_port ?(src = Prefix.any) ?(dst = Prefix.any) ?(proto = Acl.Any_proto) () =
  { in_port; src; dst; proto }

type action = Forward of string | Drop | To_controller

type t = { priority : int; matcher : matcher; action : action; cookie : string }

let make ?(cookie = "controller") ~priority matcher action =
  { priority; matcher; action; cookie }

let proto_matches m (p : Flow.proto) =
  match m with Acl.Any_proto -> true | Acl.Proto q -> q = p

let matches r ~in_port (f : Flow.t) =
  (match r.matcher.in_port with None -> true | Some p -> p = in_port)
  && Prefix.contains r.matcher.src f.src
  && Prefix.contains r.matcher.dst f.dst
  && proto_matches r.matcher.proto f.proto

let action_to_string = function
  | Forward p -> "forward:" ^ p
  | Drop -> "drop"
  | To_controller -> "controller"

let matcher_to_string m =
  Printf.sprintf "%s src=%s dst=%s proto=%s"
    (match m.in_port with Some p -> "in:" ^ p | None -> "in:any")
    (Prefix.to_string m.src) (Prefix.to_string m.dst)
    (match m.proto with Acl.Any_proto -> "any" | Acl.Proto p -> Flow.proto_to_string p)

let to_string r =
  Printf.sprintf "prio=%d %s -> %s [%s]" r.priority (matcher_to_string r.matcher)
    (action_to_string r.action) r.cookie

let equal a b = a = b
