(** OpenFlow-style flow rules for the SDN substrate (the paper's §7
    "beyond legacy networks" direction).

    A rule matches on ingress port and packet header fields; the
    highest-priority matching rule decides the action.  No matching rule
    means drop (fail closed), as on a real OpenFlow switch with no
    table-miss entry. *)

open Heimdall_net

type matcher = {
  in_port : string option;  (** [None] matches any port. *)
  src : Prefix.t;
  dst : Prefix.t;
  proto : Acl.proto_match;
}

val any : matcher
(** Match everything. *)

val matcher :
  ?in_port:string -> ?src:Prefix.t -> ?dst:Prefix.t -> ?proto:Acl.proto_match -> unit ->
  matcher

type action =
  | Forward of string  (** Egress port. *)
  | Drop
  | To_controller  (** Punt (counts as drop for dataplane reachability). *)

type t = {
  priority : int;  (** Higher wins. *)
  matcher : matcher;
  action : action;
  cookie : string;  (** Provenance tag ("controller", "tech", ...). *)
}

val make : ?cookie:string -> priority:int -> matcher -> action -> t

val matches : t -> in_port:string -> Flow.t -> bool
val to_string : t -> string
val equal : t -> t -> bool
