(** A small SDN controller: compiles connectivity intents into per-switch
    flow tables over shortest paths — the SDN analogue of this repo's
    OSPF + ACL substrate. *)

open Heimdall_net

type intent =
  | Connect of { src : string; dst : string }
      (** Bidirectional host-pair connectivity. *)
  | Block of { src : string; dst : string; proto : Acl.proto_match }
      (** Forbid src→dst traffic of the given protocol (one direction). *)

val intent_to_string : intent -> string

val compile : Fabric.t -> intent list -> Fabric.t
(** Replace every switch's table with rules realising the intents:
    forwarding entries along the shortest path for each [Connect] (both
    directions, priority 100), and ingress-switch drop entries for each
    [Block] (priority 200).  Unknown hosts in an intent are ignored. *)

val holds : Fabric.t -> intent -> bool
(** Whether the fabric's current tables satisfy the intent. *)

val violations : Fabric.t -> intent list -> intent list
(** Intents that do not hold. *)
