(** An SDN fabric: hosts wired to OpenFlow switches, each switch holding a
    flow table; forwarding is entirely table-driven. *)

open Heimdall_net

type t

val make : Topology.t -> hosts:(string * Ipv4.t) list -> t
(** [make topo ~hosts] wraps a topology whose [Switch] nodes are OpenFlow
    switches and whose [Host] nodes carry the given addresses.  Tables
    start empty (= drop everything).
    @raise Invalid_argument if a listed host is not a [Host] node. *)

val topology : t -> Topology.t
val hosts : t -> (string * Ipv4.t) list
val switches : t -> string list

val table : string -> t -> Rule.t list
(** A switch's rules, highest priority first. *)

val install : string -> Rule.t -> t -> t
(** Add a rule to a switch's table (functional).
    @raise Invalid_argument on unknown switch. *)

val uninstall : string -> Rule.t -> t -> t
(** Remove exactly this rule, if present. *)

val clear : string -> t -> t

val rule_count : t -> int

type drop_reason =
  | Table_miss of string  (** Switch with no matching rule. *)
  | Rule_drop of string * Rule.t
  | Punted of string * Rule.t  (** To_controller. *)
  | No_port of string * string  (** Forward to an unwired port. *)
  | Loop
  | Unknown_host of Ipv4.t

val drop_reason_to_string : drop_reason -> string

type result = Delivered of string list | Dropped of drop_reason * string list
(** The node path traversed (hosts and switches). *)

val trace : t -> Flow.t -> result
(** Inject the flow at the switch port facing the source host and follow
    flow-table decisions hop by hop. *)

val reachable : t -> src:Ipv4.t -> dst:Ipv4.t -> bool
