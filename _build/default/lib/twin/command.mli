(** The technician-facing command language — a small device CLI.

    Commands always execute in the context of the device the session is
    connected to.  Every command maps to exactly one privilege-taxonomy
    action, which the reference monitor checks before execution. *)

open Heimdall_net
open Heimdall_config

type show =
  | Running_config
  | Interfaces
  | Ip_route
  | Access_lists
  | Ospf_neighbors
  | Vlans
  | Topology_view

type t =
  | Connect of string  (** Open a console on a device. *)
  | Disconnect
  | Show of show
  | Ping of Ipv4.t
  | Traceroute of Ipv4.t
  | Configure of Change.op  (** A single configuration edit. *)
  | Reload  (** Reboot the device. *)
  | Erase  (** Erase the configuration — the careless-technician bomb. *)

exception Parse_error of string

val parse : string -> t
(** Parse one command line, e.g.:
    - ["connect r3"], ["disconnect"]
    - ["show running-config"], ["show ip route"], ["show interfaces"],
      ["show access-lists"], ["show ip ospf neighbors"], ["show vlan"],
      ["show topology"]
    - ["ping 10.0.4.10"], ["traceroute 10.0.4.10"]
    - ["configure interface eth0 shutdown"], ["configure interface eth0 no shutdown"]
    - ["configure interface eth0 ip address 10.0.1.1/24"]
    - ["configure interface eth0 ospf cost 5"], ["... ospf area 0"]
    - ["configure interface eth0 access-group ACL in"], ["configure interface eth0 no access-group in"]
    - ["configure interface eth0 switchport access vlan 10"]
    - ["configure access-list ACL 20 permit tcp any 10.0.2.0/24 eq 80"]
    - ["configure no access-list ACL 20"]
    - ["configure ip route 0.0.0.0/0 10.0.1.2"], ["configure no ip route 0.0.0.0/0 10.0.1.2"]
    - ["configure ip default-gateway 10.0.1.1"]
    - ["configure ospf network 10.0.1.0/24 area 0"], ["configure no ospf network 10.0.1.0/24"]
    - ["configure vlan 20 name guests"]
    - ["reload"], ["erase startup-config"]
    @raise Parse_error on malformed input. *)

val parse_result : string -> (t, string) result

val action_name : t -> Heimdall_privilege.Action.t
(** The privilege-taxonomy action this command needs.  [Connect] and
    [Disconnect] map to ["show.topology"] (seeing that a device exists). *)

val target_iface : t -> string option
(** Interface scope of the command, when it has one. *)

val to_string : t -> string
