open Heimdall_net
open Heimdall_config
open Heimdall_control

let with_config em ~node f =
  match Network.config node (Emulation.network em) with
  | None -> Printf.sprintf "%% no such device: %s\n" node
  | Some cfg -> f cfg

let running_config em ~node = with_config em ~node Printer.render

let interfaces em ~node =
  with_config em ~node (fun cfg ->
      let buf = Buffer.create 256 in
      List.iter
        (fun (i : Ast.interface) ->
          Buffer.add_string buf
            (Printf.sprintf "%-12s %-18s %s%s\n" i.if_name
               (match i.addr with Some a -> Ifaddr.to_string a | None -> "unassigned")
               (if i.enabled then "up" else "administratively down")
               (match i.description with Some d -> "  ! " ^ d | None -> "")))
        cfg.interfaces;
      Buffer.contents buf)

let ip_route em ~node =
  let dp = Emulation.dataplane em in
  let fib = Dataplane.fib node dp in
  let buf = Buffer.create 256 in
  List.iter
    (fun r -> Buffer.add_string buf (Fib.route_to_string r ^ "\n"))
    (Fib.routes fib);
  if Buffer.length buf = 0 then "no routes\n" else Buffer.contents buf

let access_lists em ~node =
  with_config em ~node (fun cfg ->
      match cfg.acls with
      | [] -> "no access-lists\n"
      | acls -> String.concat "" (List.map Printer.render_acl acls))

let ospf_neighbors em ~node =
  let dp = Emulation.dataplane em in
  let net = Emulation.network em in
  let adjs = Ospf.adjacencies net (Dataplane.l2 dp) in
  let mine =
    List.filter_map
      (fun ((a : Ospf.iface), (b : Ospf.iface)) ->
        if a.router = node then Some (a, b)
        else if b.router = node then Some (b, a)
        else None)
      adjs
  in
  match mine with
  | [] -> "no ospf neighbors\n"
  | _ ->
      String.concat ""
        (List.map
           (fun ((mine : Ospf.iface), (theirs : Ospf.iface)) ->
             Printf.sprintf "%-10s area %d via %s -> %s (%s)\n" theirs.router mine.area
               mine.iface theirs.iface
               (Ifaddr.to_string theirs.addr))
           mine)

let vlans em ~node =
  with_config em ~node (fun cfg ->
      match cfg.vlans with
      | [] -> "no vlans\n"
      | vlans ->
          String.concat ""
            (List.map (fun (id, name) -> Printf.sprintf "vlan %-4d %s\n" id name) vlans))

let topology_view em =
  let net = Emulation.network em in
  let topo = Network.topology net in
  let buf = Buffer.create 256 in
  List.iter
    (fun (n : Topology.node) ->
      Buffer.add_string buf
        (Printf.sprintf "%-12s %s\n" n.name (Topology.node_kind_to_string n.kind)))
    (Topology.nodes topo);
  List.iter
    (fun (l : Topology.link) ->
      Buffer.add_string buf
        (Printf.sprintf "%s <-> %s\n"
           (Topology.endpoint_to_string l.a)
           (Topology.endpoint_to_string l.b)))
    (Topology.links topo);
  Buffer.contents buf

let ping em ~node dst =
  match Emulation.ping em ~node dst with
  | None -> "% cannot source ping: no local address\n"
  | Some result ->
      if Heimdall_verify.Trace.is_delivered result then
        Printf.sprintf "ping %s: success (5/5 received)\n" (Ipv4.to_string dst)
      else
        Printf.sprintf "ping %s: failed (0/5 received)\n" (Ipv4.to_string dst)

let traceroute em ~node dst =
  match Emulation.traceroute em ~node dst with
  | None -> "% cannot source traceroute: no local address\n"
  | Some result -> Heimdall_verify.Trace.result_to_string result
