(** The twin's presentation layer: formats device and network state for
    the technician's console.  All output comes from the twin's (already
    scrubbed) emulated state; this layer is the only thing a technician
    ever sees. *)

open Heimdall_net

val running_config : Emulation.t -> node:string -> string
val interfaces : Emulation.t -> node:string -> string
val ip_route : Emulation.t -> node:string -> string
val access_lists : Emulation.t -> node:string -> string
val ospf_neighbors : Emulation.t -> node:string -> string
val vlans : Emulation.t -> node:string -> string

val topology_view : Emulation.t -> string
(** The slice's nodes and links — a technician sees only the twin, never
    the full production topology. *)

val ping : Emulation.t -> node:string -> Ipv4.t -> string
val traceroute : Emulation.t -> node:string -> Ipv4.t -> string
