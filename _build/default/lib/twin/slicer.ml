open Heimdall_net
open Heimdall_control

type strategy = All | Neighbor | Path | Task

let strategy_to_string = function
  | All -> "all"
  | Neighbor -> "neighbor"
  | Path -> "path"
  | Task -> "task"

let strategy_of_string = function
  | "all" -> Some All
  | "neighbor" -> Some Neighbor
  | "path" -> Some Path
  | "task" -> Some Task
  | _ -> None

let path_slack = 2

let pairs endpoints =
  let rec go = function
    | [] -> []
    | e :: rest -> List.map (fun e' -> (e, e')) rest @ go rest
  in
  go (List.sort_uniq String.compare endpoints)

(* The devices that provide layer-3 service to a node: the owner of its
   configured default gateway.  A host's traffic cannot avoid its gateway,
   so the gateway always belongs to the task slice. *)
let gateways_of net node =
  match Network.config node net with
  | None -> []
  | Some cfg -> (
      match cfg.Heimdall_config.Ast.default_gateway with
      | None -> []
      | Some gw -> (
          match Network.owner_of_address gw net with
          | Some (owner, _) -> [ owner ]
          | None -> []))

let slice strategy net ~endpoints =
  let topo = Network.topology net in
  let known = List.filter (fun e -> Topology.mem_node e topo) endpoints in
  let g = Topology.to_graph topo in
  let nodes =
    match strategy with
    | All -> Network.node_names net
    | Neighbor ->
        List.concat_map (fun e -> e :: Topology.neighbors e topo) known
    | Path ->
        known
        @ List.concat_map
            (fun (a, b) ->
              match Graph.shortest_path a b g with
              | Some (_, path) -> path
              | None -> [])
            (pairs known)
    | Task ->
        (* Seeds: the ticket's endpoints plus their layer-3 gateways (the
           forwarding path between two hosts on one switch still crosses
           the SVI router).  Then all simple paths between each seed pair
           whose length stays within [path_slack] of the shortest — the
           candidate forwarding paths a misconfiguration could involve. *)
        let seeds =
          List.sort_uniq String.compare
            (known @ List.concat_map (gateways_of net) known)
        in
        seeds
        @ List.concat_map
            (fun (a, b) ->
              match Graph.shortest_path a b g with
              | None -> []
              | Some (_, shortest) ->
                  let budget = List.length shortest + path_slack in
                  Graph.all_paths ~max_len:budget a b g |> List.concat)
            (pairs seeds)
  in
  List.sort_uniq String.compare nodes

let slice_network strategy net ~endpoints =
  Network.restrict (slice strategy net ~endpoints) net
