open Heimdall_net
open Heimdall_config

type show =
  | Running_config
  | Interfaces
  | Ip_route
  | Access_lists
  | Ospf_neighbors
  | Vlans
  | Topology_view

type t =
  | Connect of string
  | Disconnect
  | Show of show
  | Ping of Ipv4.t
  | Traceroute of Ipv4.t
  | Configure of Change.op
  | Reload
  | Erase

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let addr w =
  match Ipv4.of_string_opt w with Some a -> a | None -> fail "expected address, found %S" w

let ifaddr w =
  match Ifaddr.of_string_opt w with
  | Some a -> a
  | None -> fail "expected address/len, found %S" w

let prefix w =
  match Prefix.of_string_opt w with Some p -> p | None -> fail "expected prefix, found %S" w

let int w =
  match int_of_string_opt w with Some n -> n | None -> fail "expected integer, found %S" w

let parse_interface_configure iface rest : Change.op =
  match rest with
  | [ "shutdown" ] -> Set_interface_enabled { iface; enabled = false }
  | [ "no"; "shutdown" ] -> Set_interface_enabled { iface; enabled = true }
  | [ "ip"; "address"; a ] -> Set_interface_addr { iface; addr = Some (ifaddr a) }
  | [ "no"; "ip"; "address" ] -> Set_interface_addr { iface; addr = None }
  | "description" :: ws when ws <> [] ->
      Set_interface_description { iface; description = Some (String.concat " " ws) }
  | [ "ospf"; "cost"; c ] -> Set_ospf_cost { iface; cost = Some (int c) }
  | [ "no"; "ospf"; "cost" ] -> Set_ospf_cost { iface; cost = None }
  | [ "ospf"; "area"; a ] -> Set_ospf_area { iface; area = Some (int a) }
  | [ "no"; "ospf"; "area" ] -> Set_ospf_area { iface; area = None }
  | [ "access-group"; name; "in" ] -> Set_acl_binding { iface; dir = `In; acl = Some name }
  | [ "access-group"; name; "out" ] -> Set_acl_binding { iface; dir = `Out; acl = Some name }
  | [ "no"; "access-group"; "in" ] -> Set_acl_binding { iface; dir = `In; acl = None }
  | [ "no"; "access-group"; "out" ] -> Set_acl_binding { iface; dir = `Out; acl = None }
  | [ "switchport"; "access"; "vlan"; v ] ->
      Set_switchport { iface; switchport = Some (Ast.Access (int v)) }
  | [ "switchport"; "trunk"; "allowed"; "vlan"; vs ] ->
      Set_switchport
        { iface; switchport = Some (Ast.Trunk (List.map int (String.split_on_char ',' vs))) }
  | [ "no"; "switchport" ] -> Set_switchport { iface; switchport = None }
  | _ -> fail "unknown interface configuration: %s" (String.concat " " rest)

let parse_configure rest : Change.op =
  match rest with
  | "interface" :: iface :: sub when sub <> [] -> parse_interface_configure iface sub
  | "access-list" :: name :: rule_words when rule_words <> [] ->
      Acl_set_rule { acl = name; rule = Parser.parse_acl_rule (String.concat " " rule_words) }
  | [ "no"; "access-list"; name; seq ] -> Acl_remove_rule { acl = name; seq = int seq }
  | [ "no"; "access-list"; name ] -> Acl_remove { acl = name }
  | [ "ip"; "route"; p; nh ] ->
      Add_static_route { sr_prefix = prefix p; sr_next_hop = addr nh; sr_distance = 1 }
  | [ "no"; "ip"; "route"; p; nh ] ->
      Remove_static_route { prefix = prefix p; next_hop = addr nh }
  | [ "ip"; "default-gateway"; a ] -> Set_default_gateway (Some (addr a))
  | [ "no"; "ip"; "default-gateway" ] -> Set_default_gateway None
  | [ "ospf"; "network"; p; "area"; a ] -> Ospf_set_network { prefix = prefix p; area = int a }
  | [ "no"; "ospf"; "network"; p ] -> Ospf_remove_network { prefix = prefix p }
  | [ "vlan"; v; "name"; n ] -> Set_vlan_name { vlan = int v; name = Some n }
  | [ "no"; "vlan"; v ] -> Set_vlan_name { vlan = int v; name = None }
  | _ -> fail "unknown configure command: %s" (String.concat " " rest)

let parse line =
  match words (String.trim line) with
  | [ "connect"; node ] -> Connect node
  | [ "disconnect" ] -> Disconnect
  | [ "show"; "running-config" ] -> Show Running_config
  | [ "show"; "interfaces" ] -> Show Interfaces
  | [ "show"; "ip"; "route" ] -> Show Ip_route
  | [ "show"; "access-lists" ] -> Show Access_lists
  | [ "show"; "ip"; "ospf"; "neighbors" ] -> Show Ospf_neighbors
  | [ "show"; "vlan" ] -> Show Vlans
  | [ "show"; "topology" ] -> Show Topology_view
  | [ "ping"; a ] -> Ping (addr a)
  | [ "traceroute"; a ] -> Traceroute (addr a)
  | "configure" :: rest when rest <> [] -> Configure (parse_configure rest)
  | [ "reload" ] -> Reload
  | [ "erase"; "startup-config" ] -> Erase
  | [] -> fail "empty command"
  | ws -> fail "unknown command: %s" (String.concat " " ws)

let parse_result line =
  match parse line with t -> Ok t | exception Parse_error m -> Error m

let action_name = function
  | Connect _ | Disconnect -> "show.topology"
  | Show Running_config -> "show.config"
  | Show Interfaces -> "show.interface"
  | Show Ip_route -> "show.route"
  | Show Access_lists -> "show.acl"
  | Show Ospf_neighbors -> "show.ospf"
  | Show Vlans -> "show.vlan"
  | Show Topology_view -> "show.topology"
  | Ping _ -> "diag.ping"
  | Traceroute _ -> "diag.traceroute"
  | Configure op -> Change.op_action_name op
  | Reload -> "system.reboot"
  | Erase -> "system.erase"

let target_iface = function
  | Configure op -> Change.target_iface op
  | Connect _ | Disconnect | Show _ | Ping _ | Traceroute _ | Reload | Erase -> None

let show_to_string = function
  | Running_config -> "show running-config"
  | Interfaces -> "show interfaces"
  | Ip_route -> "show ip route"
  | Access_lists -> "show access-lists"
  | Ospf_neighbors -> "show ip ospf neighbors"
  | Vlans -> "show vlan"
  | Topology_view -> "show topology"

let to_string = function
  | Connect n -> "connect " ^ n
  | Disconnect -> "disconnect"
  | Show s -> show_to_string s
  | Ping a -> "ping " ^ Ipv4.to_string a
  | Traceroute a -> "traceroute " ^ Ipv4.to_string a
  | Configure op -> "configure " ^ Change.op_to_string op
  | Reload -> "reload"
  | Erase -> "erase startup-config"
