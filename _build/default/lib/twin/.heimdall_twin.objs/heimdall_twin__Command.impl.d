lib/twin/command.ml: Ast Change Heimdall_config Heimdall_net Ifaddr Ipv4 List Parser Prefix Printf String
