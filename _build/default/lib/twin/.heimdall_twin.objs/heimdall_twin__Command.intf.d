lib/twin/command.mli: Change Heimdall_config Heimdall_net Heimdall_privilege Ipv4
