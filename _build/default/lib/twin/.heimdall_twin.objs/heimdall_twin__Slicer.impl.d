lib/twin/slicer.ml: Graph Heimdall_config Heimdall_control Heimdall_net List Network String Topology
