lib/twin/presentation.mli: Emulation Heimdall_net Ipv4
