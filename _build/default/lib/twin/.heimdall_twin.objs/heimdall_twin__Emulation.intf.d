lib/twin/emulation.mli: Change Dataplane Heimdall_config Heimdall_control Heimdall_net Heimdall_verify Ipv4 Network
