lib/twin/slicer.mli: Heimdall_control Network
