lib/twin/twin.ml: Ast Emulation Hashtbl Heimdall_config Heimdall_control Heimdall_net List Network Option Redact Session Slicer Topology
