lib/twin/session.ml: Action Command Emulation Heimdall_control Heimdall_privilege List Network Option Presentation Printf Privilege
