lib/twin/twin.mli: Emulation Heimdall_control Heimdall_privilege Network Privilege Session Slicer
