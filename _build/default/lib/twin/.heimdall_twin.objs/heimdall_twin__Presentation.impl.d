lib/twin/presentation.ml: Ast Buffer Dataplane Emulation Fib Heimdall_config Heimdall_control Heimdall_net Heimdall_verify Ifaddr Ipv4 List Network Ospf Printer Printf String Topology
