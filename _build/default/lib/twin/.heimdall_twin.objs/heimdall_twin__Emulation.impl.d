lib/twin/emulation.ml: Ast Change Dataplane Flow Heimdall_config Heimdall_control Heimdall_net Heimdall_verify List Network Printf Redact
