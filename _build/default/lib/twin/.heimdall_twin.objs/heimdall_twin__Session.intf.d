lib/twin/session.mli: Action Emulation Heimdall_privilege Privilege
