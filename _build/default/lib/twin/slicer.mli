(** Task-driven twin-network slicing (the paper's Figure 5 design space).

    Given the production topology and a ticket's affected endpoints, each
    strategy selects the set of nodes to emulate:

    - [All]: clone everything (Figure 5b) — feasible but maximally exposed;
    - [Neighbor]: affected nodes plus their direct neighbours (Figure 5c)
      — small but often misses the root cause;
    - [Path]: nodes on one shortest path between the endpoints;
    - [Task]: Heimdall's slice — every node on any plausible forwarding
      path between the endpoints (all simple paths within a small slack of
      the shortest), which keeps the root cause reachable while staying
      far from a full clone. *)

open Heimdall_control

type strategy = All | Neighbor | Path | Task

val strategy_to_string : strategy -> string
val strategy_of_string : string -> strategy option

val slice : strategy -> Network.t -> endpoints:string list -> string list
(** Nodes selected by the strategy, sorted.  [endpoints] are the ticket's
    affected nodes (always included when they exist).  Unknown endpoint
    names are ignored. *)

val slice_network : strategy -> Network.t -> endpoints:string list -> Network.t
(** {!slice} then {!Network.restrict}. *)

val path_slack : int
(** Extra hops beyond the shortest path that [Task] considers plausible
    (2). *)
