(** Binary trie keyed by IPv4 prefixes, supporting longest-prefix-match
    lookup.  This is the data structure backing every simulated FIB.

    The trie is immutable; [add] and [remove] return new tries. *)

type 'a t
(** A trie mapping prefixes to values of type ['a]. *)

val empty : 'a t
(** The empty trie. *)

val is_empty : 'a t -> bool

val add : Prefix.t -> 'a -> 'a t -> 'a t
(** [add p v t] binds [p] to [v], replacing any previous binding of [p]. *)

val remove : Prefix.t -> 'a t -> 'a t
(** Remove the exact binding for [p], if any. *)

val find_exact : Prefix.t -> 'a t -> 'a option
(** Exact-prefix lookup. *)

val lookup : Ipv4.t -> 'a t -> (Prefix.t * 'a) option
(** [lookup a t] is the binding whose prefix is the longest one containing
    [a], or [None] if no prefix matches. *)

val fold : (Prefix.t -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
(** Fold over all bindings, in increasing prefix order. *)

val iter : (Prefix.t -> 'a -> unit) -> 'a t -> unit
val bindings : 'a t -> (Prefix.t * 'a) list
val cardinal : 'a t -> int

val of_list : (Prefix.t * 'a) list -> 'a t
(** Build a trie from bindings; later bindings win on duplicate prefixes. *)

val map : ('a -> 'b) -> 'a t -> 'b t
