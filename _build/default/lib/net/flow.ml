type proto = Icmp | Tcp | Udp

let proto_to_string = function Icmp -> "icmp" | Tcp -> "tcp" | Udp -> "udp"

let proto_of_string = function
  | "icmp" -> Some Icmp
  | "tcp" -> Some Tcp
  | "udp" -> Some Udp
  | _ -> None

let pp_proto fmt p = Format.pp_print_string fmt (proto_to_string p)

type t = { src : Ipv4.t; dst : Ipv4.t; proto : proto; src_port : int; dst_port : int }

let make ?(proto = Icmp) ?src_port ?dst_port src dst =
  let default_src, default_dst =
    match proto with Icmp -> (0, 0) | Tcp | Udp -> (40000, 80)
  in
  {
    src;
    dst;
    proto;
    src_port = Option.value src_port ~default:default_src;
    dst_port = Option.value dst_port ~default:default_dst;
  }

let icmp src dst = make ~proto:Icmp src dst
let tcp ?(src_port = 40000) ~dst_port src dst = make ~proto:Tcp ~src_port ~dst_port src dst

let reverse f =
  { f with src = f.dst; dst = f.src; src_port = f.dst_port; dst_port = f.src_port }

let to_string f =
  match f.proto with
  | Icmp -> Printf.sprintf "icmp %s -> %s" (Ipv4.to_string f.src) (Ipv4.to_string f.dst)
  | Tcp | Udp ->
      Printf.sprintf "%s %s:%d -> %s:%d" (proto_to_string f.proto)
        (Ipv4.to_string f.src) f.src_port (Ipv4.to_string f.dst) f.dst_port

let pp fmt f = Format.pp_print_string fmt (to_string f)
let compare = Stdlib.compare
let equal a b = compare a b = 0
