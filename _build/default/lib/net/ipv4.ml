type t = int

let max_value = 0xFFFF_FFFF

let of_int n =
  if n < 0 || n > max_value then
    invalid_arg (Printf.sprintf "Ipv4.of_int: %d out of range" n);
  n

let to_int a = a

let of_octets a b c d =
  let check o =
    if o < 0 || o > 255 then
      invalid_arg (Printf.sprintf "Ipv4.of_octets: octet %d out of range" o)
  in
  check a;
  check b;
  check c;
  check d;
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let of_string_opt s =
  (* Hand-rolled parse: exactly four decimal fields separated by '.'. *)
  let len = String.length s in
  let rec field i acc digits =
    if i >= len then (i, acc, digits)
    else
      match s.[i] with
      | '0' .. '9' when digits < 3 ->
          field (i + 1) ((acc * 10) + (Char.code s.[i] - Char.code '0')) (digits + 1)
      | _ -> (i, acc, digits)
  in
  let parse_octet i =
    let j, v, digits = field i 0 0 in
    if digits = 0 || v > 255 then None else Some (j, v)
  in
  let ( let* ) = Option.bind in
  let expect_dot i = if i < len && s.[i] = '.' then Some (i + 1) else None in
  let* i, a = parse_octet 0 in
  let* i = expect_dot i in
  let* i, b = parse_octet i in
  let* i = expect_dot i in
  let* i, c = parse_octet i in
  let* i = expect_dot i in
  let* i, d = parse_octet i in
  if i = len then Some (of_octets a b c d) else None

let of_string s =
  match of_string_opt s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Ipv4.of_string: %S" s)

let to_string a =
  Printf.sprintf "%d.%d.%d.%d"
    ((a lsr 24) land 0xFF)
    ((a lsr 16) land 0xFF)
    ((a lsr 8) land 0xFF)
    (a land 0xFF)

let pp fmt a = Format.pp_print_string fmt (to_string a)
let compare = Int.compare
let equal = Int.equal
let succ a = (a + 1) land max_value
let pred a = (a - 1) land max_value

let bit a i =
  if i < 0 || i > 31 then invalid_arg "Ipv4.bit: index out of range";
  (a lsr (31 - i)) land 1 = 1

let any = 0
let broadcast = max_value
let localhost = of_octets 127 0 0 1
