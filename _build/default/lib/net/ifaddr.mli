(** Interface addresses: an IPv4 address together with its subnet mask
    length, e.g. [10.0.1.1/24].  Unlike {!Prefix.t}, the host part is
    preserved — [10.0.1.1/24] and [10.0.1.2/24] are different interface
    addresses inside the same subnet. *)

type t = { addr : Ipv4.t; len : int }

val make : Ipv4.t -> int -> t
(** @raise Invalid_argument if [len] is outside [0, 32]. *)

val of_string : string -> t
(** Parse ["a.b.c.d/len"]. @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int

val subnet : t -> Prefix.t
(** The (canonical) subnet the interface lives in. *)

val address : t -> Ipv4.t
(** The interface's own address. *)

val same_subnet : t -> t -> bool
(** Whether two interface addresses share a subnet (same canonical network
    and same mask length). *)
