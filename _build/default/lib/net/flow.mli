(** Concrete flows (5-tuples) — the unit of dataplane tracing and of policy
    queries. *)

type proto = Icmp | Tcp | Udp

val proto_to_string : proto -> string
val proto_of_string : string -> proto option
val pp_proto : Format.formatter -> proto -> unit

type t = {
  src : Ipv4.t;  (** Source address. *)
  dst : Ipv4.t;  (** Destination address. *)
  proto : proto;
  src_port : int;  (** 0 for ICMP. *)
  dst_port : int;  (** 0 for ICMP. *)
}

val make : ?proto:proto -> ?src_port:int -> ?dst_port:int -> Ipv4.t -> Ipv4.t -> t
(** [make src dst] is an ICMP flow by default; ports default to 0 for ICMP
    and to ephemeral 40000 / service 80 for TCP and UDP. *)

val icmp : Ipv4.t -> Ipv4.t -> t
(** An ICMP echo flow — what [ping] sends. *)

val tcp : ?src_port:int -> dst_port:int -> Ipv4.t -> Ipv4.t -> t

val reverse : t -> t
(** Swap the endpoints (for return traffic). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool
