type t = { addr : Ipv4.t; len : int }

let make addr len =
  if len < 0 || len > 32 then
    invalid_arg (Printf.sprintf "Ifaddr.make: length %d out of range" len);
  { addr; len }

let of_string_opt s =
  match String.index_opt s '/' with
  | None -> None
  | Some i -> (
      let addr = String.sub s 0 i in
      let len_s = String.sub s (i + 1) (String.length s - i - 1) in
      match (Ipv4.of_string_opt addr, int_of_string_opt len_s) with
      | Some a, Some len when len >= 0 && len <= 32 -> Some { addr = a; len }
      | _ -> None)

let of_string s =
  match of_string_opt s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Ifaddr.of_string: %S" s)

let to_string a = Printf.sprintf "%s/%d" (Ipv4.to_string a.addr) a.len
let pp fmt a = Format.pp_print_string fmt (to_string a)

let compare a b =
  match Ipv4.compare a.addr b.addr with 0 -> Int.compare a.len b.len | c -> c

let equal a b = compare a b = 0
let subnet a = Prefix.make a.addr a.len
let address a = a.addr
let same_subnet a b = a.len = b.len && Prefix.equal (subnet a) (subnet b)
