(** IPv4 addresses.

    Addresses are represented as non-negative OCaml integers in the range
    [0, 2^32 - 1].  All arithmetic is total; constructors validate their
    inputs and raise [Invalid_argument] on malformed data. *)

type t = private int
(** An IPv4 address. *)

val of_int : int -> t
(** [of_int n] is the address with numeric value [n].
    @raise Invalid_argument if [n] is outside [0, 2^32 - 1]. *)

val to_int : t -> int
(** Numeric value of an address. *)

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is the address [a.b.c.d].
    @raise Invalid_argument if any octet is outside [0, 255]. *)

val of_string : string -> t
(** Parse dotted-quad notation, e.g. ["10.0.1.254"].
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
(** Like {!of_string} but returns [None] on malformed input. *)

val to_string : t -> string
(** Dotted-quad rendering. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer (dotted quad). *)

val compare : t -> t -> int
(** Total order on addresses (numeric). *)

val equal : t -> t -> bool

val succ : t -> t
(** Next address; wraps at 255.255.255.255. *)

val pred : t -> t
(** Previous address; wraps at 0.0.0.0. *)

val bit : t -> int -> bool
(** [bit a i] is bit [i] of [a], where bit 0 is the most significant.
    @raise Invalid_argument if [i] is outside [0, 31]. *)

val any : t
(** 0.0.0.0 *)

val broadcast : t
(** 255.255.255.255 *)

val localhost : t
(** 127.0.0.1 *)
