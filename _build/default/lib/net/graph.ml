module Smap = Map.Make (String)

type 'e edge = { dst : string; weight : int; label : 'e }
type 'e t = { adj : 'e edge list Smap.t }

let empty = { adj = Smap.empty }

let add_vertex v g =
  if Smap.mem v g.adj then g else { adj = Smap.add v [] g.adj }

let add_edge ~src ~dst ~weight ~label g =
  let g = add_vertex src (add_vertex dst g) in
  let edges = Smap.find src g.adj in
  { adj = Smap.add src ({ dst; weight; label } :: edges) g.adj }

let vertices g = Smap.fold (fun v _ acc -> v :: acc) g.adj [] |> List.rev
let mem_vertex v g = Smap.mem v g.adj

let succs v g =
  match Smap.find_opt v g.adj with
  | None -> []
  | Some edges -> List.rev_map (fun e -> (e.dst, e.weight, e.label)) edges

let vertex_count g = Smap.cardinal g.adj
let edge_count g = Smap.fold (fun _ es n -> n + List.length es) g.adj 0

let bfs src g =
  let dist = Hashtbl.create 16 in
  if not (mem_vertex src g) then dist
  else begin
    Hashtbl.replace dist src 0;
    let q = Queue.create () in
    Queue.add src q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      let du = Hashtbl.find dist u in
      let visit (v, _, _) =
        if not (Hashtbl.mem dist v) then begin
          Hashtbl.replace dist v (du + 1);
          Queue.add v q
        end
      in
      List.iter visit (succs u g)
    done;
    dist
  end

let reachable src g =
  let dist = bfs src g in
  Hashtbl.fold (fun v _ acc -> v :: acc) dist [] |> List.sort String.compare

(* Dijkstra with a sorted-module priority queue.  Entries may be stale; we
   skip a popped vertex if it is already finalised. *)
module Pq = Set.Make (struct
  type t = int * string

  let compare (d1, v1) (d2, v2) =
    match Int.compare d1 d2 with 0 -> String.compare v1 v2 | c -> c
end)

let shortest_paths src g =
  let out = Hashtbl.create 16 in
  if not (mem_vertex src g) then out
  else begin
    let best = Hashtbl.create 16 in
    let prev = Hashtbl.create 16 in
    Hashtbl.replace best src 0;
    let pq = ref (Pq.singleton (0, src)) in
    let done_ = Hashtbl.create 16 in
    while not (Pq.is_empty !pq) do
      let ((d, u) as entry) = Pq.min_elt !pq in
      pq := Pq.remove entry !pq;
      if not (Hashtbl.mem done_ u) then begin
        Hashtbl.replace done_ u ();
        let relax (v, w, _) =
          if w < 0 then invalid_arg "Graph.shortest_paths: negative weight";
          let cand = d + w in
          let better =
            match Hashtbl.find_opt best v with
            | None -> true
            | Some cur ->
                cand < cur
                || (cand = cur
                   &&
                   match Hashtbl.find_opt prev v with
                   | Some p -> String.compare u p < 0
                   | None -> true)
          in
          if better && not (Hashtbl.mem done_ v) then begin
            Hashtbl.replace best v cand;
            Hashtbl.replace prev v u;
            pq := Pq.add (cand, v) !pq
          end
        in
        List.iter relax (succs u g)
      end
    done;
    let rec path_to v = if v = src then [ src ] else path_to (Hashtbl.find prev v) @ [ v ] in
    Hashtbl.iter (fun v d -> Hashtbl.replace out v (d, path_to v)) best;
    out
  end

let shortest_path src dst g = Hashtbl.find_opt (shortest_paths src g) dst

let all_paths ?(max_len = 16) src dst g =
  let results = ref [] in
  let rec go path visited u =
    if List.length path > max_len then ()
    else if u = dst then results := List.rev path :: !results
    else
      let next =
        succs u g
        |> List.filter (fun (v, _, _) -> not (List.mem v visited))
        |> List.map (fun (v, _, _) -> v)
        |> List.sort_uniq String.compare
      in
      List.iter (fun v -> go (v :: path) (v :: visited) v) next
  in
  if mem_vertex src g && mem_vertex dst g then go [ src ] [ src ] src;
  List.rev !results

let neighbors_within radius v g =
  let dist = bfs v g in
  Hashtbl.fold (fun u d acc -> if d <= radius then u :: acc else acc) dist []
  |> List.sort String.compare

let is_connected g =
  match vertices g with
  | [] -> true
  | first :: _ as vs ->
      (* Symmetrise, then BFS. *)
      let sym =
        Smap.fold
          (fun src es acc ->
            List.fold_left
              (fun acc e ->
                add_edge ~src:e.dst ~dst:src ~weight:e.weight ~label:e.label acc)
              acc es)
          g.adj g
      in
      List.length (reachable first sym) = List.length vs
