type t = { net : Ipv4.t; len : int }

let mask_bits len = if len = 0 then 0 else 0xFFFF_FFFF lxor ((1 lsl (32 - len)) - 1)

let make addr len =
  if len < 0 || len > 32 then
    invalid_arg (Printf.sprintf "Prefix.make: length %d out of range" len);
  { net = Ipv4.of_int (Ipv4.to_int addr land mask_bits len); len }

let of_string_opt s =
  match String.index_opt s '/' with
  | None -> Option.map (fun a -> make a 32) (Ipv4.of_string_opt s)
  | Some i ->
      let addr = String.sub s 0 i in
      let len_s = String.sub s (i + 1) (String.length s - i - 1) in
      let all_digits = len_s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') len_s in
      if not all_digits then None
      else
        let len = int_of_string len_s in
        if len > 32 then None
        else Option.map (fun a -> make a len) (Ipv4.of_string_opt addr)

let of_string s =
  match of_string_opt s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string: %S" s)

let to_string p = Printf.sprintf "%s/%d" (Ipv4.to_string p.net) p.len
let pp fmt p = Format.pp_print_string fmt (to_string p)

let compare a b =
  match Ipv4.compare a.net b.net with 0 -> Int.compare a.len b.len | c -> c

let equal a b = compare a b = 0
let network p = p.net
let length p = p.len
let mask p = Ipv4.of_int (mask_bits p.len)
let contains p a = Ipv4.to_int a land mask_bits p.len = Ipv4.to_int p.net
let subsumes p q = p.len <= q.len && contains p q.net
let overlaps p q = subsumes p q || subsumes q p

let broadcast_addr p =
  Ipv4.of_int (Ipv4.to_int p.net lor (0xFFFF_FFFF lxor mask_bits p.len))

let hosts_count p = 1 lsl (32 - p.len)

let host p n =
  if n < 0 || n >= hosts_count p then
    invalid_arg (Printf.sprintf "Prefix.host: %d outside %s" n (to_string p));
  Ipv4.of_int (Ipv4.to_int p.net + n)

let any = { net = Ipv4.any; len = 0 }
let host_prefix a = { net = a; len = 32 }

let split p =
  if p.len = 32 then None
  else
    let len = p.len + 1 in
    let lo = { net = p.net; len } in
    let hi = { net = Ipv4.of_int (Ipv4.to_int p.net lor (1 lsl (32 - len))); len } in
    Some (lo, hi)
