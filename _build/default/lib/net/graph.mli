(** A small generic graph library over string-named vertices, used for
    topology reasoning (shortest paths for OSPF SPF, slicing, connectivity).

    Edges are directed and carry an integer weight plus an arbitrary label.
    Undirected links are modelled as two directed edges. *)

type 'e t
(** A graph whose edges carry labels of type ['e]. *)

val empty : 'e t
val add_vertex : string -> 'e t -> 'e t

val add_edge : src:string -> dst:string -> weight:int -> label:'e -> 'e t -> 'e t
(** Add a directed edge.  Vertices are created implicitly.  Multiple edges
    between the same pair are kept (multigraph). *)

val vertices : 'e t -> string list
(** All vertices, sorted. *)

val mem_vertex : string -> 'e t -> bool

val succs : string -> 'e t -> (string * int * 'e) list
(** Outgoing edges of a vertex as [(dst, weight, label)]; empty for unknown
    vertices. *)

val vertex_count : 'e t -> int
val edge_count : 'e t -> int

val bfs : string -> 'e t -> (string, int) Hashtbl.t
(** Unweighted distances (hop counts) from a source to every reachable
    vertex. *)

val reachable : string -> 'e t -> string list
(** Vertices reachable from the source (including itself), sorted. *)

val shortest_paths : string -> 'e t -> (string, int * string list) Hashtbl.t
(** Dijkstra from a source.  For each reachable vertex, the table holds
    [(distance, path)] where [path] lists vertices from the source to the
    vertex inclusive.  Ties break deterministically by vertex name. *)

val shortest_path : string -> string -> 'e t -> (int * string list) option
(** Shortest weighted path between two vertices, if any. *)

val all_paths : ?max_len:int -> string -> string -> 'e t -> string list list
(** All simple paths from [src] to [dst], each of at most [max_len] vertices
    (default 16).  Intended for small topology slices. *)

val neighbors_within : int -> string -> 'e t -> string list
(** Vertices within the given hop radius of a vertex, sorted. *)

val is_connected : 'e t -> bool
(** Whether the graph is (weakly) connected when treating every edge as
    bidirectional.  The empty graph is connected. *)
