(* A binary trie over address bits.  Each node may carry a value (a binding
   for the prefix spelled by the path to it) and has children for bit 0 and
   bit 1.  Lookup walks the destination address's bits, remembering the last
   value seen: that is the longest match. *)

type 'a t = Leaf | Node of { value : 'a option; zero : 'a t; one : 'a t }

let empty = Leaf

let is_empty = function
  | Leaf -> true
  | Node _ -> false

let node value zero one =
  match (value, zero, one) with
  | None, Leaf, Leaf -> Leaf
  | _ -> Node { value; zero; one }

let add p v t =
  let len = Prefix.length p in
  let net = Prefix.network p in
  let rec go depth t =
    if depth = len then
      match t with
      | Leaf -> Node { value = Some v; zero = Leaf; one = Leaf }
      | Node n -> Node { n with value = Some v }
    else
      let zero, one, value =
        match t with
        | Leaf -> (Leaf, Leaf, None)
        | Node n -> (n.zero, n.one, n.value)
      in
      if Ipv4.bit net depth then Node { value; zero; one = go (depth + 1) one }
      else Node { value; zero = go (depth + 1) zero; one }
  in
  go 0 t

let remove p t =
  let len = Prefix.length p in
  let net = Prefix.network p in
  let rec go depth t =
    match t with
    | Leaf -> Leaf
    | Node n ->
        if depth = len then node None n.zero n.one
        else if Ipv4.bit net depth then node n.value n.zero (go (depth + 1) n.one)
        else node n.value (go (depth + 1) n.zero) n.one
  in
  go 0 t

let find_exact p t =
  let len = Prefix.length p in
  let net = Prefix.network p in
  let rec go depth t =
    match t with
    | Leaf -> None
    | Node n ->
        if depth = len then n.value
        else if Ipv4.bit net depth then go (depth + 1) n.one
        else go (depth + 1) n.zero
  in
  go 0 t

let lookup a t =
  let rec go depth t best =
    match t with
    | Leaf -> best
    | Node n ->
        let best =
          match n.value with
          | Some v -> Some (Prefix.make a depth, v)
          | None -> best
        in
        if depth = 32 then best
        else if Ipv4.bit a depth then go (depth + 1) n.one best
        else go (depth + 1) n.zero best
  in
  go 0 t None

let fold f t acc =
  (* Reconstruct each binding's prefix from the path bits accumulated so
     far.  [bits] holds the path as an integer aligned to the high bits. *)
  let rec go depth bits t acc =
    match t with
    | Leaf -> acc
    | Node n ->
        let acc =
          match n.value with
          | Some v -> f (Prefix.make (Ipv4.of_int bits) depth) v acc
          | None -> acc
        in
        let acc = go (depth + 1) bits n.zero acc in
        if depth = 32 then acc
        else go (depth + 1) (bits lor (1 lsl (31 - depth))) n.one acc
  in
  go 0 0 t acc

let iter f t = fold (fun p v () -> f p v) t ()
let bindings t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])
let cardinal t = fold (fun _ _ n -> n + 1) t 0
let of_list l = List.fold_left (fun t (p, v) -> add p v t) empty l

let rec map f = function
  | Leaf -> Leaf
  | Node n -> Node { value = Option.map f n.value; zero = map f n.zero; one = map f n.one }
