lib/net/topology.ml: Format Graph Hashtbl List Map Printf String
