lib/net/prefix.ml: Format Int Ipv4 Option Printf String
