lib/net/ipv4.ml: Char Format Int Option Printf String
