lib/net/acl.mli: Flow Format Prefix
