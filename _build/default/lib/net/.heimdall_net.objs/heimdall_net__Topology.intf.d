lib/net/topology.mli: Format Graph
