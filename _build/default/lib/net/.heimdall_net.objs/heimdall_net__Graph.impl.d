lib/net/graph.ml: Hashtbl Int List Map Queue Set String
