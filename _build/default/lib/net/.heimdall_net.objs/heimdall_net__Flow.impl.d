lib/net/flow.ml: Format Ipv4 Option Printf Stdlib
