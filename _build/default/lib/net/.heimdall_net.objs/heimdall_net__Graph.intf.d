lib/net/graph.mli: Hashtbl
