lib/net/acl.ml: Flow Format Int List Prefix Printf
