lib/net/ifaddr.ml: Format Int Ipv4 Prefix Printf String
