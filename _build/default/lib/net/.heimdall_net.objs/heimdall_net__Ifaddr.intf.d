lib/net/ifaddr.mli: Format Ipv4 Prefix
