(** IPv4 CIDR prefixes (network/mask pairs), e.g. [10.0.1.0/24]. *)

type t
(** A prefix: a network address and a mask length in [0, 32].  The network
    address is always stored canonically (host bits zeroed). *)

val make : Ipv4.t -> int -> t
(** [make addr len] is the prefix [addr/len], canonicalised.
    @raise Invalid_argument if [len] is outside [0, 32]. *)

val of_string : string -> t
(** Parse ["a.b.c.d/len"].  A bare address parses as a /32.
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option

val to_string : t -> string
(** Render as ["a.b.c.d/len"]. *)

val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool

val network : t -> Ipv4.t
(** Canonical network address (host bits zero). *)

val length : t -> int
(** Mask length. *)

val mask : t -> Ipv4.t
(** Netmask as an address, e.g. 255.255.255.0 for a /24. *)

val contains : t -> Ipv4.t -> bool
(** [contains p a] is true iff [a] falls inside [p]. *)

val subsumes : t -> t -> bool
(** [subsumes p q] is true iff every address of [q] is inside [p]. *)

val overlaps : t -> t -> bool
(** True iff the two prefixes share at least one address. *)

val broadcast_addr : t -> Ipv4.t
(** Highest address in the prefix. *)

val host : t -> int -> Ipv4.t
(** [host p n] is the [n]-th address within [p] (0 is the network address).
    @raise Invalid_argument if [n] does not fit in the prefix. *)

val hosts_count : t -> int
(** Number of addresses covered ([2^(32-len)]). *)

val any : t
(** 0.0.0.0/0 — the default route prefix. *)

val host_prefix : Ipv4.t -> t
(** [host_prefix a] is [a/32]. *)

val split : t -> (t * t) option
(** Split a prefix into its two halves; [None] for a /32. *)
