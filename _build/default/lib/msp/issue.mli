(** A reproducible network issue: an injection that breaks a healthy
    network, the ticket it raises, and the prepared fix script (the
    paper's "level playing field": the technician replays a fixed command
    list, so measurements capture workflow overhead, not expertise). *)

open Heimdall_net
open Heimdall_control

type t = {
  name : string;  (** Short id: "ospf", "isp", "vlan", ... *)
  ticket : Ticket.t;
  inject : Network.t -> Network.t;  (** Break the healthy network. *)
  root_cause : string;  (** The node whose config must change. *)
  fix_commands : string list;  (** Technician script, including [connect]s. *)
  probe : Flow.t;  (** Flow that exhibits the symptom (broken → fixed). *)
}

val symptom_present : t -> Network.t -> bool
(** True when the probe flow does NOT get delivered (the issue shows). *)

val to_string : t -> string
