open Heimdall_net
open Heimdall_control

type t = {
  name : string;
  ticket : Ticket.t;
  inject : Network.t -> Network.t;
  root_cause : string;
  fix_commands : string list;
  probe : Flow.t;
}

let symptom_present t net =
  not (Heimdall_verify.Trace.is_delivered (Heimdall_verify.Trace.trace (Dataplane.compute net) t.probe))

let to_string t =
  Printf.sprintf "issue %s: %s (root cause: %s, %d-step fix)" t.name
    (Ticket.to_string t.ticket) t.root_cause
    (List.length t.fix_commands)
