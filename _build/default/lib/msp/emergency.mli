(** Emergency mode (paper §7, "Limitations of the twin network").

    Some incidents cannot wait for a twin (or cannot be reproduced in
    one).  In emergency mode the reference monitor bypasses the twin and
    sends the technician's commands to the production network {e through
    the policy enforcer}: every configuration command is verified against
    the [Privilege_msp] and the network policies {e before} it touches
    production; reads execute directly against production state.  Every
    attempt is chained into an audit trail regardless of outcome.

    This keeps the two guarantees the paper cares about even without a
    twin — least privilege and verified changes — at the cost of exposing
    live (unscrubbed) state to [show] commands, which is why emergency
    mode requires an explicit, audited [reason]. *)

open Heimdall_control
open Heimdall_privilege
open Heimdall_verify

type t
(** An open emergency session. *)

type refusal =
  | Denied of { action : Action.t; node : string }  (** Privilege_msp says no. *)
  | Would_violate of string list  (** Policy violations the change would cause. *)
  | Malformed of string
  | No_device

val refusal_to_string : refusal -> string

val open_session :
  ?technician:string ->
  reason:string ->
  production:Network.t ->
  policies:Policy.t list ->
  privilege:Privilege.t ->
  unit ->
  t
(** Open an emergency session.  The [reason] is recorded as the first
    audit record. *)

val exec : t -> string -> (string, refusal) result
(** Execute one command.  Mutating commands are applied to production
    only if (a) the privilege spec allows them and (b) no policy that
    currently holds would break.  [system.erase] and [reload] are always
    refused in emergency mode. *)

val production : t -> Network.t
(** Current production network (reflects applied emergency changes). *)

val audit : t -> Heimdall_enforcer.Audit.t
(** The tamper-evident record of the whole emergency session. *)

val applied : t -> Heimdall_config.Change.t list
(** Changes that reached production, oldest first. *)
