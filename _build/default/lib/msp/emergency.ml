open Heimdall_control
open Heimdall_privilege
open Heimdall_verify
open Heimdall_twin
open Heimdall_config

type refusal =
  | Denied of { action : Action.t; node : string }
  | Would_violate of string list
  | Malformed of string
  | No_device

let refusal_to_string = function
  | Denied { action; node } -> Printf.sprintf "denied: %s on %s" action node
  | Would_violate reasons ->
      Printf.sprintf "refused: change would violate %d policies (%s)" (List.length reasons)
        (String.concat "; " reasons)
  | Malformed m -> Printf.sprintf "parse error: %s" m
  | No_device -> "not connected to any device"

type t = {
  technician : string;
  policies : Policy.t list;
  privilege : Privilege.t;
  mutable network : Network.t;
  mutable connected : string option;
  mutable audit : Heimdall_enforcer.Audit.t;
  mutable applied : Change.t list;  (* newest first *)
}

let record t ~action ~resource ~detail ~verdict =
  t.audit <-
    Heimdall_enforcer.Audit.append ~actor:t.technician ~action ~resource ~detail ~verdict
      t.audit

let open_session ?(technician = "tech") ~reason ~production ~policies ~privilege () =
  let t =
    {
      technician;
      policies;
      privilege;
      network = production;
      connected = None;
      audit = Heimdall_enforcer.Audit.empty;
      applied = [];
    }
  in
  record t ~action:"emergency.open" ~resource:"production" ~detail:reason ~verdict:"opened";
  t

let production t = t.network
let audit t = t.audit
let applied t = List.rev t.applied

(* Policies that currently hold; used to refuse changes that would break
   any of them. *)
let held t =
  let report = Policy.check_all (Dataplane.compute t.network) t.policies in
  List.filter
    (fun p -> not (List.exists (fun (q, _) -> Policy.equal p q) report.violations))
    t.policies

let try_apply t node op =
  match Network.apply_changes [ Change.v node op ] t.network with
  | Error m -> Error (Malformed m)
  | Ok candidate ->
      let held_before = held t in
      let report = Policy.check_all (Dataplane.compute candidate) t.policies in
      let newly_broken =
        List.filter
          (fun (p, _) -> List.exists (Policy.equal p) held_before)
          report.violations
      in
      if newly_broken <> [] then
        Error (Would_violate (List.map (fun (_, reason) -> reason) newly_broken))
      else begin
        t.network <- candidate;
        t.applied <- Change.v node op :: t.applied;
        Ok "applied to production\n"
      end

let exec t line =
  match Command.parse_result line with
  | Error m ->
      record t ~action:"emergency.exec" ~resource:"-" ~detail:line ~verdict:"malformed";
      Error (Malformed m)
  | Ok cmd -> (
      let node_scope =
        match cmd with
        | Command.Connect n -> Ok n
        | Command.Disconnect -> Ok (Option.value t.connected ~default:"-")
        | _ -> ( match t.connected with Some n -> Ok n | None -> Error No_device)
      in
      match node_scope with
      | Error e ->
          record t ~action:(Command.action_name cmd) ~resource:"-" ~detail:line
            ~verdict:"refused";
          Error e
      | Ok node ->
          let action = Command.action_name cmd in
          let request = Privilege.request ?iface:(Command.target_iface cmd) action node in
          let allowed =
            Privilege.allows t.privilege request
            && (not (Action.is_destructive action))
            && action <> "system.reboot"
          in
          if not allowed then begin
            record t ~action ~resource:node ~detail:line ~verdict:"denied";
            Error (Denied { action; node })
          end
          else begin
            let result =
              match cmd with
              | Command.Connect n ->
                  if Network.config n t.network = None then Error No_device
                  else begin
                    t.connected <- Some n;
                    Ok (Printf.sprintf "connected to %s (PRODUCTION)\n" n)
                  end
              | Command.Disconnect ->
                  t.connected <- None;
                  Ok "disconnected\n"
              | Command.Configure op -> try_apply t node op
              | Command.Reload | Command.Erase ->
                  (* Unreachable: is_destructive filtered above; reload
                     blocked explicitly. *)
                  Error (Denied { action; node })
              | Command.Show _ | Command.Ping _ | Command.Traceroute _ ->
                  (* Reads run against live production state through a
                     throwaway unchecked emulation wrapper. *)
                  let em = Emulation.create_unchecked t.network in
                  let out =
                    match cmd with
                    | Command.Show Command.Running_config ->
                        Presentation.running_config em ~node
                    | Command.Show Command.Interfaces -> Presentation.interfaces em ~node
                    | Command.Show Command.Ip_route -> Presentation.ip_route em ~node
                    | Command.Show Command.Access_lists -> Presentation.access_lists em ~node
                    | Command.Show Command.Ospf_neighbors ->
                        Presentation.ospf_neighbors em ~node
                    | Command.Show Command.Vlans -> Presentation.vlans em ~node
                    | Command.Show Command.Topology_view -> Presentation.topology_view em
                    | Command.Ping dst -> Presentation.ping em ~node dst
                    | Command.Traceroute dst -> Presentation.traceroute em ~node dst
                    | Command.Connect _ | Command.Disconnect | Command.Configure _
                    | Command.Reload | Command.Erase ->
                        assert false
                  in
                  Ok out
            in
            let verdict =
              match result with
              | Ok _ -> "allowed"
              | Error (Would_violate _) -> "refused-policy"
              | Error _ -> "refused"
            in
            record t ~action ~resource:node ~detail:line ~verdict;
            result
          end)
