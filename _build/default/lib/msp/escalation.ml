open Heimdall_control
open Heimdall_privilege

type request = {
  technician : string;
  ticket : Ticket.t;
  actions : string list;
  nodes : string list;
  justification : string;
}

type decision = Granted of Privilege.predicate | Refused of string

let decision_to_string = function
  | Granted p ->
      Printf.sprintf "granted: %s on %s"
        (String.concat ", " p.Privilege.actions)
        (String.concat ", " (List.map Privilege.resource_to_string p.Privilege.resources))
  | Refused reason -> "refused: " ^ reason

let ticket_kinds = [ Ticket.Connectivity; Ticket.Routing; Ticket.Vlan; Ticket.External ]

let decide ~network ~slice ~current request =
  let unknown = List.filter (fun a -> not (Action.mem a)) request.actions in
  if request.actions = [] then Refused "no actions requested"
  else if unknown <> [] then
    Refused (Printf.sprintf "unknown actions: %s" (String.concat ", " unknown))
  else if List.exists Action.is_destructive request.actions then
    Refused "destructive actions are never granted by escalation"
  else if List.mem "secret.set" request.actions then
    Refused "credential changes are never granted by escalation"
  else
    let outside = List.filter (fun n -> not (List.mem n slice)) request.nodes in
    if request.nodes = [] then Refused "no nodes requested"
    else if outside <> [] then
      Refused
        (Printf.sprintf "nodes outside the ticket's twin slice: %s"
           (String.concat ", " outside))
    else
      let non_infra =
        List.filter
          (fun n ->
            match Network.kind n network with
            | Some (Heimdall_net.Topology.Router | Heimdall_net.Topology.Switch
                   | Heimdall_net.Topology.Firewall) ->
                false
            | Some Heimdall_net.Topology.Host | None -> true)
          request.nodes
      in
      if non_infra <> [] then
        Refused
          (Printf.sprintf "repair actions on non-infrastructure nodes: %s"
             (String.concat ", " non_infra))
      else
        let fits_profile =
          List.exists
            (fun kind ->
              let profile = Priv_gen.repair_actions kind in
              List.for_all (fun a -> List.mem a profile) request.actions)
            ticket_kinds
        in
        if not fits_profile then
          Refused "requested actions match no recognised task profile"
        else
          let adds_something =
            List.exists
              (fun action ->
                List.exists
                  (fun node ->
                    not (Privilege.allows current (Privilege.request action node)))
                  request.nodes)
              request.actions
          in
          if not adds_something then Refused "escalation adds no new privilege"
          else
            Granted (Privilege.allow ~actions:request.actions ~nodes:request.nodes ())

let grant session predicate = Heimdall_twin.Session.escalate session predicate
