(** Attack scenarios from the paper's motivation (§2.2), replayable
    against either the baseline RMM session or a Heimdall twin session:

    - {b data breach} (APT10-style): the technician account tries to read
      credentials off devices and exfiltrate them;
    - {b malicious change}: alongside a legitimate fix, the technician
      slips in an ACL rule opening a sensitive host;
    - {b careless destruction}: an erase command on the gateway router. *)

open Heimdall_control
open Heimdall_twin
open Heimdall_verify

type exfiltration = {
  attempted : int;  (** Commands issued. *)
  denied : int;  (** Commands the monitor refused. *)
  leaked : string list;  (** Production secret values visible in output. *)
}

val exfiltrate : production:Network.t -> targets:string list -> Session.t -> exfiltration
(** Replay the APT10 playbook ([connect] + [show running-config] on every
    target) in the given session and report what leaked.  [production]
    supplies the ground-truth secrets. *)

val malicious_acl_commands : acl:string -> seq:int -> src:Heimdall_net.Prefix.t ->
  dst:Heimdall_net.Prefix.t -> node:string -> string list
(** The command pair that sneaks a permit rule into an ACL on [node]. *)

val erase_gateway_commands : gateway:string -> string list

val policy_damage : policies:Policy.t list -> before:Network.t -> after:Network.t -> int
(** How many policies that held on [before] are violated on [after] —
    the blast radius of an attack that reached production. *)
