lib/msp/rmm.ml: Emulation Heimdall_privilege Heimdall_twin Privilege Session
