lib/msp/issue.ml: Dataplane Flow Heimdall_control Heimdall_net Heimdall_verify List Network Printf Ticket
