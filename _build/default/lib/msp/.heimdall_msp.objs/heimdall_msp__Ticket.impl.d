lib/msp/ticket.ml: Printf String
