lib/msp/priv_gen.ml: Heimdall_control Heimdall_net Heimdall_privilege List Network Privilege Ticket Topology
