lib/msp/rmm.mli: Heimdall_control Heimdall_twin Network Session
