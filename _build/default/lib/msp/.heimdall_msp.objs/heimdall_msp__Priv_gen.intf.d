lib/msp/priv_gen.mli: Heimdall_control Heimdall_privilege Network Privilege Ticket
