lib/msp/attacks.ml: Dataplane Heimdall_config Heimdall_control Heimdall_net Heimdall_twin Heimdall_verify List Network Policy Prefix Printf Redact Session String
