lib/msp/issue.mli: Flow Heimdall_control Heimdall_net Network Ticket
