lib/msp/workflow.ml: Buffer Dataplane Emulation Heimdall_control Heimdall_enforcer Heimdall_twin Heimdall_verify Issue List Network Printf Priv_gen Rmm Session Slicer Timing Trace Twin
