lib/msp/escalation.mli: Heimdall_control Heimdall_privilege Heimdall_twin Network Privilege Ticket
