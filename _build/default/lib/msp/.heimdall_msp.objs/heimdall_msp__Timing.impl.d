lib/msp/timing.ml: Unix
