lib/msp/timing.mli:
