lib/msp/workflow.mli: Heimdall_control Heimdall_enforcer Heimdall_twin Heimdall_verify Issue Network Policy
