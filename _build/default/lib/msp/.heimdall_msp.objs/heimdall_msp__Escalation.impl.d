lib/msp/escalation.ml: Action Heimdall_control Heimdall_net Heimdall_privilege Heimdall_twin List Network Printf Priv_gen Privilege String Ticket
