lib/msp/attacks.mli: Heimdall_control Heimdall_net Heimdall_twin Heimdall_verify Network Policy Session
