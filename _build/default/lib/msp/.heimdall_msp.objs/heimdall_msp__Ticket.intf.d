lib/msp/ticket.mli:
