(** Privilege escalation (paper §7): a technician's privileges "may need
    to evolve over time, likely escalating from more to less restrictive"
    — e.g. a routing ticket that turns out to need firewall-rule edits.

    The paper leaves "how to differentiate valid escalations from
    malicious attempts" open; this module implements a concrete,
    conservative decision policy an admin can audit:

    - the requested actions must form (a subset of) the repair profile of
      {e some} recognised ticket class — free-form action grab-bags are
      refused;
    - the requested nodes must lie inside the ticket's twin slice (the
      incident cannot legitimately require devices the task never
      touches);
    - destructive ([system.*]) and credential ([secret.set]) actions are
      never granted;
    - escalations that add nothing (already allowed) are refused as
      suspicious noise.

    Every decision is returned with a reason so it can be audited. *)

open Heimdall_control
open Heimdall_privilege

type request = {
  technician : string;
  ticket : Ticket.t;
  actions : string list;  (** Exact action names (no patterns). *)
  nodes : string list;
  justification : string;
}

type decision =
  | Granted of Privilege.predicate
  | Refused of string  (** Human-readable reason. *)

val decision_to_string : decision -> string

val decide :
  network:Network.t -> slice:string list -> current:Privilege.t -> request -> decision

val grant : Heimdall_twin.Session.t -> Privilege.predicate -> unit
(** Apply a granted escalation to a live session (logged by the
    session's reference monitor). *)
