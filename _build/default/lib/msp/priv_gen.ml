open Heimdall_net
open Heimdall_control
open Heimdall_privilege

let repair_actions = function
  | Ticket.Connectivity ->
      [
        "interface.up";
        "interface.shutdown";
        "interface.addr";
        "acl.rule";
        "acl.bind";
        "route.static";
        "ospf.cost";
        "ospf.area";
        "ospf.network";
      ]
  | Ticket.Routing ->
      [
        "interface.up";
        "interface.shutdown";
        "ospf.cost";
        "ospf.area";
        "ospf.network";
        "route.static";
      ]
  | Ticket.Vlan ->
      [ "interface.up"; "interface.shutdown"; "vlan.define"; "vlan.switchport" ]
  | Ticket.External ->
      [ "interface.up"; "interface.shutdown"; "interface.addr"; "route.static"; "route.gateway" ]

let infrastructure network nodes =
  List.filter
    (fun n ->
      match Network.kind n network with
      | Some (Topology.Router | Topology.Switch | Topology.Firewall) -> true
      | Some Topology.Host | None -> false)
    nodes

let for_ticket ~network ~slice (ticket : Ticket.t) =
  let show = Privilege.allow ~actions:[ "show.*"; "diag.*" ] ~nodes:slice () in
  let infra = infrastructure network slice in
  let repairs =
    if infra = [] then []
    else [ Privilege.allow ~actions:(repair_actions ticket.kind) ~nodes:infra () ]
  in
  Privilege.of_predicates ((show :: repairs) @ [])

let escalation kind ~nodes = Privilege.allow ~actions:(repair_actions kind) ~nodes ()
