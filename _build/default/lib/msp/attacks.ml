open Heimdall_net
open Heimdall_config
open Heimdall_control
open Heimdall_twin
open Heimdall_verify

type exfiltration = { attempted : int; denied : int; leaked : string list }

let exfiltrate ~production ~targets session =
  let outputs = ref [] in
  let denied = ref 0 in
  let attempted = ref 0 in
  List.iter
    (fun target ->
      List.iter
        (fun cmd ->
          incr attempted;
          match Session.exec session cmd with
          | Ok out -> outputs := out :: !outputs
          | Error _ -> incr denied)
        [ "connect " ^ target; "show running-config" ])
    targets;
  let all_output = String.concat "\n" !outputs in
  let leaked =
    List.concat_map
      (fun (_, cfg) -> Redact.leaked_secrets ~production:cfg all_output)
      (Network.configs production)
    |> List.sort_uniq String.compare
  in
  { attempted = !attempted; denied = !denied; leaked }

let malicious_acl_commands ~acl ~seq ~src ~dst ~node =
  [
    Printf.sprintf "connect %s" node;
    Printf.sprintf "configure access-list %s %d permit ip %s %s" acl seq
      (Prefix.to_string src) (Prefix.to_string dst);
  ]

let erase_gateway_commands ~gateway =
  [ Printf.sprintf "connect %s" gateway; "erase startup-config" ]

let policy_damage ~policies ~before ~after =
  let check net =
    let report = Policy.check_all (Dataplane.compute net) policies in
    report.Policy.violations |> List.map (fun (p, _) -> p.Policy.id)
  in
  let before_violated = check before in
  let after_violated = check after in
  List.length
    (List.filter (fun id -> not (List.mem id before_violated)) after_violated)
