(** Trouble tickets — the unit of MSP work (paper §2.1). *)

type kind =
  | Connectivity  (** "X cannot reach Y" — generic L3 debugging. *)
  | Routing  (** Suspected routing-protocol problem (OSPF, static). *)
  | Vlan  (** Layer-2 / VLAN problem. *)
  | External  (** Upstream/ISP-related reconfiguration. *)

val kind_to_string : kind -> string

type t = {
  id : string;
  kind : kind;
  description : string;
  endpoints : string list;
      (** Affected devices named in the ticket (drives the twin slice). *)
}

val make : id:string -> kind:kind -> description:string -> endpoints:string list -> t
val to_string : t -> string
