type kind = Connectivity | Routing | Vlan | External

let kind_to_string = function
  | Connectivity -> "connectivity"
  | Routing -> "routing"
  | Vlan -> "vlan"
  | External -> "external"

type t = { id : string; kind : kind; description : string; endpoints : string list }

let make ~id ~kind ~description ~endpoints = { id; kind; description; endpoints }

let to_string t =
  Printf.sprintf "[%s] (%s) %s — affects: %s" t.id (kind_to_string t.kind) t.description
    (String.concat ", " t.endpoints)
