open Heimdall_privilege
open Heimdall_twin

let open_direct_session ?technician production =
  let emulation = Emulation.create_unchecked production in
  Session.create ?technician ~privilege:Privilege.allow_all emulation

let resulting_network session = Emulation.network (Session.emulation session)
