(** The status-quo RMM model (paper §2.1, Figure 1): once authenticated,
    the technician gets a console with root on every production device —
    no twin, no privilege spec, no scrubbing.  This is the baseline every
    experiment compares Heimdall against. *)

open Heimdall_control
open Heimdall_twin

val open_direct_session : ?technician:string -> Network.t -> Session.t
(** A session straight onto the production network with allow-all
    privileges and unscrubbed configs.  Changes made here mutate the
    session's network immediately — exactly the exposure the paper
    criticises. *)

val resulting_network : Session.t -> Network.t
(** The production network after whatever the technician did. *)
