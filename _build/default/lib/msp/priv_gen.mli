(** Task-driven [Privilege_msp] generation (paper Challenge 1: crafting a
    fine-grained spec by hand is tedious and error-prone, so Heimdall
    derives one from the ticket).

    The generated spec allows read/diagnose actions on every node in the
    twin slice and the repair actions matching the ticket's kind on the
    slice's infrastructure nodes.  Everything else — other nodes, secret
    changes, destructive [system.*] commands — falls to the default
    deny. *)

open Heimdall_control
open Heimdall_privilege

val repair_actions : Ticket.kind -> string list
(** The mutation actions a ticket class plausibly needs:
    - [Connectivity]: interface, ACL, static-route and OSPF repairs;
    - [Routing]: interface, OSPF and static-route repairs;
    - [Vlan]: VLAN/switchport and interface repairs;
    - [External]: static/default routing, addressing and interface repairs. *)

val for_ticket : network:Network.t -> slice:string list -> Ticket.t -> Privilege.t
(** Generate the spec.  Hosts in the slice get read-only access;
    infrastructure nodes (routers, switches, firewalls) also get the
    ticket-class repair actions. *)

val escalation : Ticket.kind -> nodes:string list -> Privilege.predicate
(** The predicate an admin would grant when a technician outgrows the
    initial spec (paper §7, privilege escalation): the repair actions of
    the given ticket class on the listed nodes. *)
