lib/json/json.mli: Format
