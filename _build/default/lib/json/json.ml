type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Parsing: a hand-written recursive-descent parser over a string.     *)
(* ------------------------------------------------------------------ *)

type state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" st.pos msg))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error st (Printf.sprintf "expected %C, found %C" c c')
  | None -> error st (Printf.sprintf "expected %C, found end of input" c)

let expect_keyword st kw value =
  let n = String.length kw in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = kw then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected %s" kw)

let parse_string_body st =
  (* [st.pos] is just past the opening quote. *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.src then error st "truncated \\u escape";
                let hex = String.sub st.src st.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with Failure _ -> error st "invalid \\u escape"
                in
                st.pos <- st.pos + 4;
                (* Encode the code point as UTF-8 (BMP only; surrogate pairs
                   are stored as two separate escapes, adequate here). *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> error st (Printf.sprintf "invalid escape \\%C" c));
            go ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let consume_digits () =
    let rec go () =
      match peek st with
      | Some ('0' .. '9') ->
          advance st;
          go ()
      | _ -> ()
    in
    go ()
  in
  if peek st = Some '-' then advance st;
  consume_digits ();
  if peek st = Some '.' then begin
    is_float := true;
    advance st;
    consume_digits ()
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      consume_digits ()
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error st (Printf.sprintf "invalid number %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> error st (Printf.sprintf "invalid number %S" text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '"' ->
      advance st;
      String (parse_string_body st)
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some 't' -> expect_keyword st "true" (Bool true)
  | Some 'f' -> expect_keyword st "false" (Bool false)
  | Some 'n' -> expect_keyword st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected character %C" c)

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else
    let rec members acc =
      skip_ws st;
      expect st '"';
      let key = parse_string_body st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          members ((key, v) :: acc)
      | Some '}' ->
          advance st;
          Obj (List.rev ((key, v) :: acc))
      | _ -> error st "expected ',' or '}'"
    in
    members []

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    List []
  end
  else
    let rec elements acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          elements (v :: acc)
      | Some ']' ->
          advance st;
          List (List.rev (v :: acc))
      | _ -> error st "expected ',' or ']'"
    in
    elements []

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing garbage";
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_to_json_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth t =
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_to_json_string f)
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then begin
              Buffer.add_char buf '\n';
              indent (depth + 1)
            end;
            go (depth + 1) item)
          items;
        if pretty then begin
          Buffer.add_char buf '\n';
          indent depth
        end;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj members ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then begin
              Buffer.add_char buf '\n';
              indent (depth + 1)
            end;
            Buffer.add_string buf (escape_string k);
            Buffer.add_char buf ':';
            if pretty then Buffer.add_char buf ' ';
            go (depth + 1) v)
          members;
        if pretty then begin
          Buffer.add_char buf '\n';
          indent depth
        end;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

let member key = function
  | Obj members -> List.assoc_opt key members
  | _ -> None

let to_list_opt = function List l -> Some l | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | String x, String y -> x = y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
      List.length x = List.length y
      && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && equal v1 v2) x y
  | (Null | Bool _ | Int _ | Float _ | String _ | List _ | Obj _), _ -> false

let pp fmt t = Format.pp_print_string fmt (to_string ~pretty:true t)
