(** A minimal JSON parser and printer, vendored because [yojson] is not
    available in this environment.  Supports the full JSON grammar except
    that numbers are split into [Int] and [Float] on parse ([42] parses as
    [Int 42], [42.0] as [Float 42.0]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** Insertion-ordered object members. *)

exception Parse_error of string
(** Raised by {!of_string} with a position-annotated message. *)

val of_string : string -> t
(** Parse a JSON document.  @raise Parse_error on malformed input. *)

val of_string_opt : string -> t option

val to_string : ?pretty:bool -> t -> string
(** Serialise.  [pretty] (default false) adds 2-space indentation. *)

(** {2 Accessors} — each returns [None] on shape mismatch. *)

val member : string -> t -> t option
(** Object member lookup. *)

val to_list_opt : t -> t list option
val to_string_opt : t -> string option
val to_int_opt : t -> int option
val to_bool_opt : t -> bool option
val to_float_opt : t -> float option
(** Accepts both [Int] and [Float]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
