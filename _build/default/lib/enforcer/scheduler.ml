open Heimdall_config
open Heimdall_control
open Heimdall_verify

type step = { change : Change.t; transient_violations : (Policy.t * string) list }
type plan = { steps : step list; safe : bool }

let new_violations ~held dp policies =
  (* Violations among policies that currently hold. *)
  let report = Policy.check_all dp policies in
  List.filter (fun (p, _) -> List.exists (Policy.equal p) held) report.violations

let plan ~production ~policies ~changes =
  let held_on net =
    let report = Policy.check_all (Dataplane.compute net) policies in
    List.filter
      (fun p -> not (List.exists (fun (q, _) -> Policy.equal p q) report.violations))
      policies
  in
  let rec go current remaining steps =
    match remaining with
    | [] -> Ok ({ steps = List.rev steps; safe = List.for_all (fun s -> s.transient_violations = []) (List.rev steps) }, current)
    | _ ->
        let held = held_on current in
        (* Evaluate each candidate's transient damage. *)
        let evaluate c =
          match Network.apply_changes [ c ] current with
          | Error m -> Error m
          | Ok net ->
              let damage = new_violations ~held (Dataplane.compute net) policies in
              Ok (c, net, damage)
        in
        let rec eval_all acc = function
          | [] -> Ok (List.rev acc)
          | c :: rest -> (
              match evaluate c with
              | Error m -> Error m
              | Ok r -> eval_all (r :: acc) rest)
        in
        (match eval_all [] remaining with
        | Error m -> Error m
        | Ok candidates ->
            (* Prefer the first zero-damage candidate (stable order keeps
               the plan deterministic); otherwise the least-damage one. *)
            let best =
              match List.find_opt (fun (_, _, d) -> d = []) candidates with
              | Some c -> c
              | None ->
                  List.fold_left
                    (fun acc c ->
                      let _, _, d = c and _, _, da = acc in
                      if List.length d < List.length da then c else acc)
                    (List.hd candidates) (List.tl candidates)
            in
            let c, net, damage = best in
            let remaining' =
              List.filter (fun c' -> not (c' == c)) remaining
            in
            go net remaining' ({ change = c; transient_violations = damage } :: steps))
  in
  go production changes []

let plan_to_string p =
  let buf = Buffer.create 256 in
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "%2d. %s%s\n" (i + 1) (Change.to_string s.change)
           (match s.transient_violations with
           | [] -> ""
           | vs -> Printf.sprintf "  (transient: %d violations)" (List.length vs))))
    p.steps;
  Buffer.add_string buf (if p.safe then "plan: safe\n" else "plan: contains transient violations\n");
  Buffer.contents buf
