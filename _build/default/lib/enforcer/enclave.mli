(** A simulated trusted execution environment (Intel-SGX-style) hosting
    the policy enforcer.

    The paper runs its enforcer inside an SGX enclave for trustworthiness.
    No SGX hardware exists in this environment, so this module reproduces
    the *API semantics* the enforcer relies on — code measurement, sealed
    storage bound to the measurement, and attestation reports a customer
    can verify — over the from-scratch SHA-256/HMAC.  The substitution is
    documented in DESIGN.md. *)

type t
(** A loaded enclave instance. *)

val load : code_identity:string -> t
(** "Load" an enclave whose measurement is the hash of [code_identity]
    (standing in for the hash of the enclave binary). *)

val measurement : t -> string
(** Hex MRENCLAVE-equivalent. *)

(** {2 Sealed storage} — confidentiality + integrity, bound to the
    measurement: another enclave (different code identity) cannot unseal. *)

val seal : t -> string -> string
(** Encrypt-then-MAC a plaintext blob. *)

val unseal : t -> string -> (string, string) result
(** Recover a sealed blob; fails on wrong enclave or tampered blob. *)

(** {2 Attestation} *)

type report = { body_measurement : string; report_data : string; mac : string }

val attest : t -> report_data:string -> report
(** Produce a report binding [report_data] (e.g. the audit head) to the
    enclave measurement, MACed with the platform key. *)

val verify_report : report -> bool
(** Platform-side report verification. *)

val expected_measurement : code_identity:string -> string
(** What a customer should compare a report's measurement against. *)
