(** SHA-256 (FIPS 180-4) and HMAC-SHA-256, implemented from scratch —
    no crypto package is available in this environment.  Backs the
    hash-chained audit trail and the simulated enclave's sealing and
    attestation.  Verified against the standard test vectors in the test
    suite. *)

val digest : string -> string
(** Raw 32-byte digest. *)

val hex : string -> string
(** Hex-encoded digest of the input (64 hex chars). *)

val hmac : key:string -> string -> string
(** HMAC-SHA-256, raw 32-byte MAC. *)

val hmac_hex : key:string -> string -> string

val to_hex : string -> string
(** Hex-encode an arbitrary byte string. *)
