(** Tamper-evident audit trail: a hash chain of records.

    Each record's hash covers its content and the previous record's hash;
    the chain head is a commitment to the whole history.  Any modification,
    insertion, deletion or reordering of past records breaks {!verify}.
    The enforcer seals the head inside the (simulated) enclave. *)

type record = {
  seq : int;
  actor : string;
  action : string;  (** Privilege-taxonomy action or enforcer event name. *)
  resource : string;  (** Device (and interface) acted on. *)
  detail : string;  (** Free-form: command text, change description... *)
  verdict : string;  (** "allowed" / "denied" / "approved" / "rejected". *)
  prev_hash : string;  (** Hex hash of the previous record ("genesis" sentinel first). *)
  hash : string;  (** Hex hash of this record. *)
}

val genesis_hash : string

type t
(** An append-only trail. *)

val empty : t

val append : actor:string -> action:string -> resource:string -> detail:string ->
  verdict:string -> t -> t
(** Append one record, computing its chained hash. *)

val of_session_log : Heimdall_twin.Session.log_entry list -> t
(** Chain a whole technician session log. *)

val records : t -> record list
(** Oldest first. *)

val length : t -> int

val head : t -> string
(** Hash of the newest record ({!genesis_hash} when empty). *)

val verify : t -> (unit, string) result
(** Recompute every hash and check the chain links. *)

val tamper : int -> (record -> record) -> t -> t
(** [tamper seq f t] applies [f] to the record with sequence [seq]
    {e without} rehashing — a test helper that simulates an attacker
    editing history in place. *)

val to_string : t -> string
(** One line per record. *)

(** {2 Persistence} — audit trails are "reviewed later" (paper §3), so
    they must survive the session that produced them. *)

val export : t -> string
(** Serialise as JSON lines (one record per line, oldest first). *)

val import : string -> (t, string) result
(** Parse an exported trail {e and verify the whole chain}: a file whose
    records were edited, dropped, reordered or spliced is rejected. *)
