lib/enforcer/scheduler.ml: Buffer Change Dataplane Heimdall_config Heimdall_control Heimdall_verify List Network Policy Printf
