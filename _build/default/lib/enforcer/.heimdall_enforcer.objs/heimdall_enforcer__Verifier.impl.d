lib/enforcer/verifier.ml: Action Change Dataplane Heimdall_config Heimdall_control Heimdall_privilege Heimdall_verify List Network Policy Printf Privilege
