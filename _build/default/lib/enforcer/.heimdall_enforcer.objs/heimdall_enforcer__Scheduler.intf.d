lib/enforcer/scheduler.mli: Change Heimdall_config Heimdall_control Heimdall_verify Network Policy
