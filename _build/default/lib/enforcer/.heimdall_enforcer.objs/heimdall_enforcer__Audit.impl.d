lib/enforcer/audit.ml: Heimdall_json Heimdall_twin List Option Printf Sha256 String
