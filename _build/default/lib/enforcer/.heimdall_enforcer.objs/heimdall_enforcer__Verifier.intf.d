lib/enforcer/verifier.mli: Action Change Heimdall_config Heimdall_control Heimdall_privilege Heimdall_verify Network Policy Privilege
