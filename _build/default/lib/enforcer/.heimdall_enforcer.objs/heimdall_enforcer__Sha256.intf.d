lib/enforcer/sha256.mli:
