lib/enforcer/enforcer.ml: Audit Buffer Change Enclave Heimdall_config Heimdall_control Heimdall_twin Heimdall_verify List Policy Printf Reachability Scheduler String Verifier
