lib/enforcer/enclave.mli:
