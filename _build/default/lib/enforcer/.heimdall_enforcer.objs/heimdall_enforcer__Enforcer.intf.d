lib/enforcer/enforcer.mli: Audit Enclave Heimdall_control Heimdall_privilege Heimdall_twin Heimdall_verify Network Policy Privilege Reachability Scheduler Verifier
