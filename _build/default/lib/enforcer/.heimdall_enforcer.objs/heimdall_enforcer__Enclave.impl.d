lib/enforcer/enclave.ml: Buffer Char Printf Sha256 String
