lib/enforcer/audit.mli: Heimdall_twin
