(* The "platform key" of the simulated CPU.  On real hardware this never
   leaves the die; here it is a constant because the simulation only needs
   the protocol shape, not actual secrecy. *)
let platform_key = "heimdall-simulated-platform-fuse-key"

type t = { code_identity : string; meas : string; seal_key : string }

let expected_measurement ~code_identity = Sha256.hex code_identity

let load ~code_identity =
  let meas = expected_measurement ~code_identity in
  (* The sealing key derives from platform key + measurement, as in SGX's
     MRENCLAVE key policy. *)
  let seal_key = Sha256.hmac ~key:platform_key ("seal|" ^ meas) in
  { code_identity; meas; seal_key }

let measurement t = t.meas

(* Stream cipher: SHA-256 in counter mode under the sealing key. *)
let keystream key len =
  let buf = Buffer.create (len + 32) in
  let counter = ref 0 in
  while Buffer.length buf < len do
    Buffer.add_string buf (Sha256.digest (Printf.sprintf "%s|%d" key !counter));
    incr counter
  done;
  Buffer.sub buf 0 len

let xor_with key s =
  let ks = keystream key (String.length s) in
  String.init (String.length s) (fun i -> Char.chr (Char.code s.[i] lxor Char.code ks.[i]))

let seal t plaintext =
  let ciphertext = xor_with t.seal_key plaintext in
  let mac = Sha256.hmac_hex ~key:t.seal_key ciphertext in
  mac ^ ciphertext

let unseal t blob =
  if String.length blob < 64 then Error "sealed blob too short"
  else
    let mac = String.sub blob 0 64 in
    let ciphertext = String.sub blob 64 (String.length blob - 64) in
    if not (String.equal mac (Sha256.hmac_hex ~key:t.seal_key ciphertext)) then
      Error "seal MAC mismatch (wrong enclave or tampered blob)"
    else Ok (xor_with t.seal_key ciphertext)

type report = { body_measurement : string; report_data : string; mac : string }

let attest t ~report_data =
  let mac = Sha256.hmac_hex ~key:platform_key (t.meas ^ "|" ^ report_data) in
  { body_measurement = t.meas; report_data; mac }

let verify_report r =
  String.equal r.mac (Sha256.hmac_hex ~key:platform_key (r.body_measurement ^ "|" ^ r.report_data))
