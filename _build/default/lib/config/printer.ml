open Heimdall_net

let bprintf = Printf.bprintf

let render_interface_into buf (i : Ast.interface) =
  bprintf buf "interface %s\n" i.if_name;
  Option.iter (fun d -> bprintf buf " description %s\n" d) i.description;
  Option.iter (fun a -> bprintf buf " ip address %s\n" (Ifaddr.to_string a)) i.addr;
  Option.iter (fun c -> bprintf buf " ospf cost %d\n" c) i.ospf_cost;
  Option.iter (fun a -> bprintf buf " ospf area %d\n" a) i.ospf_area;
  Option.iter (fun a -> bprintf buf " access-group %s in\n" a) i.acl_in;
  Option.iter (fun a -> bprintf buf " access-group %s out\n" a) i.acl_out;
  (match i.switchport with
  | None -> ()
  | Some (Ast.Access v) -> bprintf buf " switchport access vlan %d\n" v
  | Some (Ast.Trunk vs) ->
      bprintf buf " switchport trunk allowed vlan %s\n"
        (String.concat "," (List.map string_of_int vs)));
  if not i.enabled then bprintf buf " shutdown\n"

let render_interface i =
  let buf = Buffer.create 128 in
  render_interface_into buf i;
  Buffer.contents buf

let render_acl_into buf (acl : Acl.t) =
  List.iter
    (fun r -> bprintf buf "access-list %s %s\n" acl.name (Acl.rule_to_string r))
    acl.rules

let render_acl acl =
  let buf = Buffer.create 128 in
  render_acl_into buf acl;
  Buffer.contents buf

let render_secret_into buf (s : Ast.secret) =
  match s with
  | Enable_secret v -> bprintf buf "enable secret %s\n" v
  | Snmp_community v -> bprintf buf "snmp-server community %s\n" v
  | Ipsec_key (k, peer) -> bprintf buf "crypto ipsec key %s peer %s\n" k (Ipv4.to_string peer)
  | User_password (u, p) -> bprintf buf "username %s password %s\n" u p

let render (c : Ast.t) =
  let c = Ast.normalize c in
  let buf = Buffer.create 1024 in
  let bang () = bprintf buf "!\n" in
  bprintf buf "hostname %s\n" c.hostname;
  List.iter (render_secret_into buf) c.secrets;
  Option.iter (fun g -> bprintf buf "ip default-gateway %s\n" (Ipv4.to_string g))
    c.default_gateway;
  bang ();
  List.iter
    (fun (id, name) ->
      bprintf buf "vlan %d\n name %s\n" id name;
      bang ())
    c.vlans;
  List.iter
    (fun i ->
      render_interface_into buf i;
      bang ())
    c.interfaces;
  (match c.ospf with
  | None -> ()
  | Some o ->
      bprintf buf "router ospf\n";
      Option.iter (fun id -> bprintf buf " router-id %s\n" (Ipv4.to_string id)) o.router_id;
      List.iter
        (fun (p, area) -> bprintf buf " network %s area %d\n" (Prefix.to_string p) area)
        o.networks;
      if o.default_originate then bprintf buf " default-information originate\n";
      bang ());
  (match c.bgp with
  | None -> ()
  | Some b ->
      bprintf buf "router bgp %d\n" b.local_as;
      List.iter
        (fun (n : Ast.bgp_neighbor) ->
          bprintf buf " neighbor %s remote-as %d\n" (Ipv4.to_string n.peer) n.remote_as)
        b.bgp_neighbors;
      List.iter (fun p -> bprintf buf " network %s\n" (Prefix.to_string p)) b.advertised;
      bang ());
  List.iter
    (fun (r : Ast.static_route) ->
      if r.sr_distance = 1 then
        bprintf buf "ip route %s %s\n" (Prefix.to_string r.sr_prefix)
          (Ipv4.to_string r.sr_next_hop)
      else
        bprintf buf "ip route %s %s %d\n" (Prefix.to_string r.sr_prefix)
          (Ipv4.to_string r.sr_next_hop) r.sr_distance)
    c.static_routes;
  List.iter (render_acl_into buf) c.acls;
  Buffer.contents buf

let line_count c =
  render c |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
