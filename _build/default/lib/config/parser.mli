(** Parser for the configuration language rendered by {!Printer}.

    The format is line-oriented: top-level commands start in column 0,
    stanza bodies (interface / router / vlan) are indented by at least one
    space, and [!] lines are separators.  Unknown lines raise — technician
    edits must be well-formed before they reach any device. *)

exception Parse_error of int * string
(** [(line_number, message)], 1-based line numbers. *)

val parse : string -> Ast.t
(** Parse a full device configuration.
    @raise Parse_error on the first malformed line. *)

val parse_result : string -> (Ast.t, int * string) result
(** Non-raising variant. *)

val parse_acl_rule : string -> Heimdall_net.Acl.rule
(** Parse just the rule part of an access-list line, i.e. the text after
    the ACL name: ["10 deny tcp 10.0.2.0/24 any eq 80"].
    @raise Parse_error (with line 0) on malformed input. *)
