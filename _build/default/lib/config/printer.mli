(** Render configurations to their canonical textual form.

    [Parser.parse (Printer.render c)] round-trips to a config equal to
    [Ast.normalize c]; tests enforce this. *)

val render : Ast.t -> string
(** Full canonical rendering, ending in a newline. *)

val render_interface : Ast.interface -> string
(** Just one interface stanza (used by [show] commands). *)

val render_acl : Heimdall_net.Acl.t -> string
(** Just one access-list (one line per rule). *)

val line_count : Ast.t -> int
(** Number of non-empty lines in the canonical rendering — the "lines of
    configs" measure reported in the paper's Table 1. *)
