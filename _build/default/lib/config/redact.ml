let placeholder = "REDACTED"

let scrub_secret (s : Ast.secret) : Ast.secret =
  match s with
  | Enable_secret _ -> Enable_secret placeholder
  | Snmp_community _ -> Snmp_community placeholder
  | Ipsec_key (_, peer) -> Ipsec_key (placeholder, peer)
  | User_password (u, _) -> User_password (u, placeholder)

let scrub (c : Ast.t) = { c with secrets = List.map scrub_secret c.secrets }

let is_scrubbed (c : Ast.t) =
  List.for_all (fun s -> Ast.secret_value s = placeholder) c.secrets

let contains_substring haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  if nl = 0 then true
  else
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0

let leaked_secrets ~(production : Ast.t) text =
  production.secrets
  |> List.map Ast.secret_value
  |> List.filter (fun v -> v <> placeholder && contains_substring text v)
  |> List.sort_uniq String.compare
