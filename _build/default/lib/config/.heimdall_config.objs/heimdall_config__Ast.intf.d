lib/config/ast.mli: Acl Heimdall_net Ifaddr Ipv4 Prefix
