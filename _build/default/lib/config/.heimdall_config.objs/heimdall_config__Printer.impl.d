lib/config/printer.ml: Acl Ast Buffer Heimdall_net Ifaddr Ipv4 List Option Prefix Printf String
