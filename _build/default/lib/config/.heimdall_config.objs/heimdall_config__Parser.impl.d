lib/config/parser.ml: Acl Ast Flow Hashtbl Heimdall_net Ifaddr Ipv4 List Prefix Printf String
