lib/config/parser.mli: Ast Heimdall_net
