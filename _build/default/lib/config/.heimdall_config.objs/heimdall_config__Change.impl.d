lib/config/change.ml: Acl Ast Format Heimdall_net Ifaddr Ipv4 List Map Option Prefix Printf String
