lib/config/redact.mli: Ast
