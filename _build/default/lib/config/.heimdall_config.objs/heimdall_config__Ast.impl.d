lib/config/ast.ml: Acl Heimdall_net Ifaddr Int Ipv4 List Option Prefix String
