lib/config/change.mli: Acl Ast Format Heimdall_net Ifaddr Ipv4 Prefix
