lib/config/printer.mli: Ast Heimdall_net
