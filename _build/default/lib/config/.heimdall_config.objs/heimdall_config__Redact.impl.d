lib/config/redact.ml: Ast List String
