(** Secret redaction for twin networks.

    The twin must let a technician read configs without exposing the
    production network's credentials (the paper's Challenge 2: cloning all
    elements "can expose sensitive data (e.g., an IPSec key)").  [scrub]
    replaces every secret with a deterministic placeholder that keeps the
    config parseable and structurally identical. *)

val placeholder : string
(** The replacement token, ["<redacted>"]-style but config-token safe. *)

val scrub : Ast.t -> Ast.t
(** Replace all secret values (enable secrets, SNMP communities, IPsec
    keys, user passwords) with {!placeholder}.  Usernames and peers are
    preserved; only the sensitive strings change. *)

val is_scrubbed : Ast.t -> bool
(** True iff every secret value in the config is {!placeholder}. *)

val leaked_secrets : production:Ast.t -> string -> string list
(** [leaked_secrets ~production text] lists every secret value of the
    production config occurring verbatim in [text] — used to audit command
    output for leaks. *)
