open Heimdall_net

exception Parse_error of int * string

let fail lineno fmt = Printf.ksprintf (fun m -> raise (Parse_error (lineno, m))) fmt

let words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let int_of_word lineno w =
  match int_of_string_opt w with
  | Some n -> n
  | None -> fail lineno "expected integer, found %S" w

let prefix_of_word lineno w =
  match Prefix.of_string_opt w with
  | Some p -> p
  | None -> fail lineno "expected prefix, found %S" w

let addr_of_word lineno w =
  match Ipv4.of_string_opt w with
  | Some a -> a
  | None -> fail lineno "expected address, found %S" w

let ifaddr_of_word lineno w =
  match Ifaddr.of_string_opt w with
  | Some a -> a
  | None -> fail lineno "expected interface address, found %S" w

let acl_prefix_of_word lineno w =
  if w = "any" then Prefix.any else prefix_of_word lineno w

(* Parse an optional port matcher, returning it with the remaining words. *)
let port_match_of_words lineno = function
  | "eq" :: p :: rest -> (Acl.Eq (int_of_word lineno p), rest)
  | "range" :: lo :: hi :: rest ->
      (Acl.Range (int_of_word lineno lo, int_of_word lineno hi), rest)
  | rest -> (Acl.Any_port, rest)

let proto_match_of_word lineno = function
  | "ip" -> Acl.Any_proto
  | w -> (
      match Flow.proto_of_string w with
      | Some p -> Acl.Proto p
      | None -> fail lineno "unknown protocol %S" w)

let acl_rule_of_words lineno ws =
  match ws with
  | seq :: action :: proto :: rest ->
      let seq = int_of_word lineno seq in
      let action =
        match Acl.action_of_string action with
        | Some a -> a
        | None -> fail lineno "expected permit/deny, found %S" action
      in
      let proto = proto_match_of_word lineno proto in
      let src, rest =
        match rest with
        | src :: rest -> (acl_prefix_of_word lineno src, rest)
        | [] -> fail lineno "access-list rule: missing source"
      in
      let src_port, rest = port_match_of_words lineno rest in
      let dst, rest =
        match rest with
        | dst :: rest -> (acl_prefix_of_word lineno dst, rest)
        | [] -> fail lineno "access-list rule: missing destination"
      in
      let dst_port, rest = port_match_of_words lineno rest in
      if rest <> [] then fail lineno "access-list rule: trailing words";
      { Acl.seq; action; proto; src; src_port; dst; dst_port }
  | _ -> fail lineno "malformed access-list rule"

let parse_acl_rule s = acl_rule_of_words 0 (words s)

(* Mutable accumulator for a config under construction. *)
type builder = {
  mutable hostname : string option;
  mutable interfaces : Ast.interface list;  (* reversed *)
  mutable vlans : (int * string) list;
  mutable acl_rules : (string * Acl.rule) list;  (* reversed *)
  mutable static_routes : Ast.static_route list;
  mutable ospf : Ast.ospf option;
  mutable bgp : Ast.bgp option;
  mutable default_gateway : Ipv4.t option;
  mutable secrets : Ast.secret list;  (* reversed *)
}

type section =
  | Top
  | In_interface of Ast.interface
  | In_ospf of Ast.ospf
  | In_bgp of Ast.bgp
  | In_vlan of int * string option

let flush_section b lineno = function
  | Top -> ()
  | In_interface i ->
      if List.exists (fun (j : Ast.interface) -> j.if_name = i.if_name) b.interfaces then
        fail lineno "duplicate interface %s" i.if_name;
      b.interfaces <- i :: b.interfaces
  | In_ospf o ->
      if b.ospf <> None then fail lineno "duplicate router ospf stanza";
      b.ospf <- Some { o with networks = List.rev o.networks }
  | In_bgp g ->
      if b.bgp <> None then fail lineno "duplicate router bgp stanza";
      b.bgp <-
        Some
          {
            g with
            bgp_neighbors = List.rev g.bgp_neighbors;
            advertised = List.rev g.advertised;
          }
  | In_vlan (id, name) -> (
      match name with
      | None -> fail lineno "vlan %d: missing name" id
      | Some name ->
          if List.mem_assoc id b.vlans then fail lineno "duplicate vlan %d" id;
          b.vlans <- (id, name) :: b.vlans)

let interface_line lineno (i : Ast.interface) ws : Ast.interface =
  match ws with
  | "description" :: rest -> { i with description = Some (String.concat " " rest) }
  | [ "ip"; "address"; p ] -> { i with addr = Some (ifaddr_of_word lineno p) }
  | [ "ospf"; "cost"; c ] -> { i with ospf_cost = Some (int_of_word lineno c) }
  | [ "ospf"; "area"; a ] -> { i with ospf_area = Some (int_of_word lineno a) }
  | [ "access-group"; name; "in" ] -> { i with acl_in = Some name }
  | [ "access-group"; name; "out" ] -> { i with acl_out = Some name }
  | [ "switchport"; "access"; "vlan"; v ] ->
      { i with switchport = Some (Ast.Access (int_of_word lineno v)) }
  | [ "switchport"; "trunk"; "allowed"; "vlan"; vs ] ->
      let vlans = String.split_on_char ',' vs |> List.map (int_of_word lineno) in
      { i with switchport = Some (Ast.Trunk vlans) }
  | [ "shutdown" ] -> { i with enabled = false }
  | [ "no"; "shutdown" ] -> { i with enabled = true }
  | _ -> fail lineno "unknown interface command: %s" (String.concat " " ws)

let ospf_line lineno (o : Ast.ospf) ws : Ast.ospf =
  match ws with
  | [ "router-id"; id ] -> { o with router_id = Some (addr_of_word lineno id) }
  | [ "network"; p; "area"; a ] ->
      { o with networks = (prefix_of_word lineno p, int_of_word lineno a) :: o.networks }
  | [ "default-information"; "originate" ] -> { o with default_originate = true }
  | _ -> fail lineno "unknown ospf command: %s" (String.concat " " ws)

let bgp_line lineno (g : Ast.bgp) ws : Ast.bgp =
  match ws with
  | [ "neighbor"; peer; "remote-as"; asn ] ->
      {
        g with
        bgp_neighbors =
          { Ast.peer = addr_of_word lineno peer; remote_as = int_of_word lineno asn }
          :: g.bgp_neighbors;
      }
  | [ "network"; p ] -> { g with advertised = prefix_of_word lineno p :: g.advertised }
  | _ -> fail lineno "unknown bgp command: %s" (String.concat " " ws)

let top_line lineno b ws =
  match ws with
  | [ "hostname"; h ] ->
      if b.hostname <> None then fail lineno "duplicate hostname";
      b.hostname <- Some h
  | [ "enable"; "secret"; s ] -> b.secrets <- Ast.Enable_secret s :: b.secrets
  | [ "snmp-server"; "community"; s ] -> b.secrets <- Ast.Snmp_community s :: b.secrets
  | [ "crypto"; "ipsec"; "key"; k; "peer"; p ] ->
      b.secrets <- Ast.Ipsec_key (k, addr_of_word lineno p) :: b.secrets
  | [ "username"; u; "password"; p ] -> b.secrets <- Ast.User_password (u, p) :: b.secrets
  | [ "ip"; "default-gateway"; g ] ->
      if b.default_gateway <> None then fail lineno "duplicate default-gateway";
      b.default_gateway <- Some (addr_of_word lineno g)
  | [ "ip"; "route"; p; nh ] ->
      b.static_routes <-
        { Ast.sr_prefix = prefix_of_word lineno p;
          sr_next_hop = addr_of_word lineno nh;
          sr_distance = 1 }
        :: b.static_routes
  | [ "ip"; "route"; p; nh; d ] ->
      b.static_routes <-
        { Ast.sr_prefix = prefix_of_word lineno p;
          sr_next_hop = addr_of_word lineno nh;
          sr_distance = int_of_word lineno d }
        :: b.static_routes
  | "access-list" :: name :: rest ->
      b.acl_rules <- (name, acl_rule_of_words lineno rest) :: b.acl_rules
  | _ -> fail lineno "unknown command: %s" (String.concat " " ws)

let build_acls lineno rules =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (name, rule) ->
      if not (Hashtbl.mem tbl name) then order := name :: !order;
      Hashtbl.replace tbl name (rule :: (try Hashtbl.find tbl name with Not_found -> [])))
    rules;
  List.rev_map
    (fun name ->
      let rules = List.rev (Hashtbl.find tbl name) in
      try Acl.make name rules with Invalid_argument m -> fail lineno "%s" m)
    !order

let parse text =
  let b =
    {
      hostname = None;
      interfaces = [];
      vlans = [];
      acl_rules = [];
      static_routes = [];
      ospf = None;
      bgp = None;
      default_gateway = None;
      secrets = [];
    }
  in
  let section = ref Top in
  let lines = String.split_on_char '\n' text in
  let last = ref 0 in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      last := lineno;
      let trimmed = String.trim raw in
      if trimmed = "" || trimmed = "!" || String.length trimmed > 0 && trimmed.[0] = '#'
      then begin
        (* Separator: close any open stanza. *)
        flush_section b lineno !section;
        section := Top
      end
      else
        let indented = raw.[0] = ' ' in
        let ws = words trimmed in
        if indented then
          match !section with
          | Top -> fail lineno "indented line outside a stanza: %s" trimmed
          | In_interface i -> section := In_interface (interface_line lineno i ws)
          | In_ospf o -> section := In_ospf (ospf_line lineno o ws)
          | In_bgp g -> section := In_bgp (bgp_line lineno g ws)
          | In_vlan (id, _) -> (
              match ws with
              | [ "name"; n ] -> section := In_vlan (id, Some n)
              | _ -> fail lineno "unknown vlan command: %s" trimmed)
        else begin
          flush_section b lineno !section;
          section := Top;
          match ws with
          | [ "interface"; name ] -> section := In_interface (Ast.interface name)
          | [ "router"; "ospf" ] ->
              section :=
                In_ospf { Ast.router_id = None; networks = []; default_originate = false }
          | [ "router"; "bgp"; asn ] ->
              section :=
                In_bgp
                  { Ast.local_as = int_of_word lineno asn; bgp_neighbors = []; advertised = [] }
          | [ "vlan"; id ] -> section := In_vlan (int_of_word lineno id, None)
          | _ -> top_line lineno b ws
        end)
    lines;
  flush_section b !last !section;
  let hostname =
    match b.hostname with Some h -> h | None -> fail !last "missing hostname"
  in
  Ast.make ~interfaces:(List.rev b.interfaces) ~vlans:(List.rev b.vlans)
    ~acls:(build_acls !last (List.rev b.acl_rules))
    ~static_routes:(List.rev b.static_routes) ?ospf:b.ospf ?bgp:b.bgp
    ?default_gateway:b.default_gateway ~secrets:(List.rev b.secrets) hostname

let parse_result text =
  match parse text with
  | c -> Ok c
  | exception Parse_error (l, m) -> Error (l, m)
