(* Tests for the twin network: command parsing, slicing, the emulation
   layer, the presentation layer's redaction guarantees, and the
   reference monitor. *)

open Heimdall_net
open Heimdall_config
open Heimdall_control
open Heimdall_twin
open Heimdall_privilege
module B = Heimdall_scenarios.Builder
module Enterprise = Heimdall_scenarios.Enterprise

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let ip = Ipv4.of_string

(* ---------------- Command parsing ---------------- *)

let test_command_parse_show () =
  checkb "running-config" true (Command.parse "show running-config" = Command.Show Command.Running_config);
  checkb "route" true (Command.parse "show ip route" = Command.Show Command.Ip_route);
  checkb "ospf" true
    (Command.parse "show ip ospf neighbors" = Command.Show Command.Ospf_neighbors)

let test_command_parse_configure () =
  (match Command.parse "configure interface eth0 shutdown" with
  | Command.Configure (Change.Set_interface_enabled { iface = "eth0"; enabled = false }) -> ()
  | _ -> Alcotest.fail "shutdown");
  (match Command.parse "configure access-list A 10 permit tcp any 10.0.0.0/8 eq 80" with
  | Command.Configure (Change.Acl_set_rule { acl = "A"; rule }) ->
      checki "seq" 10 rule.Acl.seq
  | _ -> Alcotest.fail "acl");
  (match Command.parse "configure ip route 0.0.0.0/0 10.0.0.1" with
  | Command.Configure (Change.Add_static_route r) ->
      checkb "default" true (Prefix.equal r.Ast.sr_prefix Prefix.any)
  | _ -> Alcotest.fail "route");
  match Command.parse "configure interface eth1 switchport trunk allowed vlan 10,20" with
  | Command.Configure (Change.Set_switchport { switchport = Some (Ast.Trunk [ 10; 20 ]); _ }) -> ()
  | _ -> Alcotest.fail "trunk"

let test_command_parse_errors () =
  List.iter
    (fun line ->
      match Command.parse_result line with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("expected parse error: " ^ line))
    [
      "";
      "frobnicate";
      "show";
      "ping";
      "ping banana";
      "configure";
      "configure interface";
      "configure interface eth0 launch missiles";
      "erase";
    ]

let test_command_action_mapping () =
  checks "ping" "diag.ping" (Command.action_name (Command.parse "ping 1.2.3.4"));
  checks "erase" "system.erase" (Command.action_name (Command.parse "erase startup-config"));
  checks "config" "interface.shutdown"
    (Command.action_name (Command.parse "configure interface eth0 shutdown"));
  checkb "iface scope" true
    (Command.target_iface (Command.parse "configure interface eth0 shutdown") = Some "eth0")

let test_command_roundtrip_to_string () =
  List.iter
    (fun line -> checkb line true (Command.parse_result line |> Result.is_ok))
    [
      "connect r1"; "disconnect"; "show vlan"; "show topology"; "traceroute 10.0.0.1";
      "configure vlan 30 name dmz"; "configure no ip route 0.0.0.0/0 10.0.0.1";
      "configure no access-list A 10"; "configure interface eth0 no access-group in";
      "reload";
    ]

(* ---------------- Slicer ---------------- *)

let test_slicer_strategies () =
  let net = Enterprise.build () in
  let endpoints = [ "h2"; "h3" ] in
  let all = Slicer.slice Slicer.All net ~endpoints in
  let neighbor = Slicer.slice Slicer.Neighbor net ~endpoints in
  let path = Slicer.slice Slicer.Path net ~endpoints in
  let task = Slicer.slice Slicer.Task net ~endpoints in
  checki "all = everything" (List.length (Network.node_names net)) (List.length all);
  checkb "neighbor small" true (List.length neighbor < List.length task);
  checkb "path <= task" true (List.length path <= List.length task);
  checkb "task < all" true (List.length task < List.length all);
  checkb "endpoints in all slices" true
    (List.for_all
       (fun s -> List.mem "h2" s && List.mem "h3" s)
       [ neighbor; path; task ])

let test_slicer_includes_gateways () =
  let net = Enterprise.build () in
  let task = Slicer.slice Slicer.Task net ~endpoints:[ "h1"; "h2" ] in
  (* Both hosts sit on r4's SVI: same-switch ticket must still expose the
     gateway router. *)
  checkb "gateway in slice" true (List.mem "r4" task)

let test_slicer_unknown_endpoints () =
  let net = Enterprise.build () in
  let s = Slicer.slice Slicer.Task net ~endpoints:[ "ghost"; "h1" ] in
  checkb "survives unknown" true (List.mem "h1" s)

let test_slice_network_restricts () =
  let net = Enterprise.build () in
  let twin = Slicer.slice_network Slicer.Task net ~endpoints:[ "h2"; "h3" ] in
  checkb "smaller" true
    (List.length (Network.node_names twin) < List.length (Network.node_names net));
  checkb "valid" true (Result.is_ok (Network.validate twin))

(* ---------------- Twin build & emulation ---------------- *)

let build_twin () =
  let net = Enterprise.build () in
  let em = Twin.build ~production:net ~endpoints:[ "h2"; "h3" ] () in
  (net, em)

let test_twin_scrubbed () =
  let net, em = build_twin () in
  List.iter
    (fun (node, cfg) ->
      checkb (node ^ " scrubbed") true (Redact.is_scrubbed cfg);
      (* No production secret value survives anywhere in the twin. *)
      match Network.config node net with
      | Some prod ->
          checkb (node ^ " no leak") true
            (Redact.leaked_secrets ~production:prod (Printer.render cfg) = [])
      | None -> ())
    (Network.configs (Emulation.network em))

let test_twin_rejects_unscrubbed () =
  let net = Enterprise.build () in
  Alcotest.check_raises "unscrubbed"
    (Invalid_argument "Emulation.create: node h1 carries unscrubbed secrets") (fun () ->
      ignore (Emulation.create (Network.restrict [ "h1" ] net)))

let test_emulation_apply_and_changes () =
  let _, em = build_twin () in
  checki "no changes yet" 0 (List.length (Emulation.changes em));
  (match Emulation.apply em ~node:"r4" (Change.Set_ospf_cost { iface = "eth0"; cost = Some 99 }) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let changes = Emulation.changes em in
  checki "one change" 1 (List.length changes);
  checkb "right node" true ((List.hd changes).Change.node = "r4");
  checkb "bad apply reported" true
    (Result.is_error (Emulation.apply em ~node:"r4" (Change.Set_ospf_cost { iface = "zz"; cost = None })))

let test_emulation_dataplane_invalidation () =
  let _, em = build_twin () in
  let before =
    Fib.route_count (Dataplane.fib "h2" (Emulation.dataplane em))
  in
  (match
     Emulation.apply em ~node:"h2" (Change.Set_default_gateway None)
   with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let after = Fib.route_count (Dataplane.fib "h2" (Emulation.dataplane em)) in
  checki "gateway route gone" (before - 1) after

let test_emulation_erase () =
  let _, em = build_twin () in
  Emulation.erase em ~node:"r4";
  let cfg = Network.config_exn "r4" (Emulation.network em) in
  checkb "no addresses" true (Ast.addresses cfg = []);
  checkb "no acls" true (cfg.Ast.acls = []);
  checkb "interfaces kept" true (cfg.Ast.interfaces <> []);
  checkb "diff shows damage" true (Emulation.changes em <> [])

let test_emulation_ping () =
  let _, em = build_twin () in
  (match Emulation.ping em ~node:"h2" (ip "10.1.10.1") with
  | Some r -> checkb "gateway pingable" true (Heimdall_verify.Trace.is_delivered r)
  | None -> Alcotest.fail "no source address");
  checkb "reload counted" true
    (Emulation.reload em ~node:"r4";
     Emulation.reload_count em = 1)

(* ---------------- Presentation & session ---------------- *)

let full_privilege_session () =
  let _, em = build_twin () in
  Twin.open_session ~privilege:Privilege.allow_all em

let test_presentation_no_secrets () =
  let net, em = build_twin () in
  let session = Twin.open_session ~privilege:Privilege.allow_all em in
  let outputs =
    List.filter_map
      (fun cmd -> Result.to_option (Session.exec session cmd))
      [
        "connect r4";
        "show running-config";
        "show interfaces";
        "show ip route";
        "show access-lists";
        "show ip ospf neighbors";
        "show vlan";
        "show topology";
      ]
  in
  let blob = String.concat "" outputs in
  List.iter
    (fun (_, prod) ->
      checkb "no secret in output" true (Redact.leaked_secrets ~production:prod blob = []))
    (Network.configs net)

let test_session_requires_connect () =
  let session = full_privilege_session () in
  (match Session.exec session "show ip route" with
  | Error Session.Not_connected -> ()
  | _ -> Alcotest.fail "expected Not_connected");
  (match Session.exec session "connect r4" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Session.error_to_string e));
  checkb "now works" true (Result.is_ok (Session.exec session "show ip route"))

let test_session_unknown_node () =
  let session = full_privilege_session () in
  match Session.exec session "connect mars" with
  | Error (Session.Unknown_node "mars") -> ()
  | _ -> Alcotest.fail "expected Unknown_node"

let test_monitor_denies_out_of_spec () =
  let _, em = build_twin () in
  let privilege =
    Privilege.of_predicates
      [ Privilege.allow ~actions:[ "show.*"; "diag.*" ] ~nodes:[ "r4"; "h2" ] () ]
  in
  let session = Twin.open_session ~privilege em in
  ignore (Session.exec session "connect r4");
  (match Session.exec session "configure interface eth0 shutdown" with
  | Error (Session.Denied_request { action = "interface.shutdown"; node = "r4" }) -> ()
  | _ -> Alcotest.fail "expected denial");
  checkb "show ok" true (Result.is_ok (Session.exec session "show ip route"));
  (* Denials are logged. *)
  checki "one denial" 1 (Session.denied_count session);
  let denied =
    List.filter (fun (e : Session.log_entry) -> e.verdict = Session.Denied) (Session.log session)
  in
  checks "logged action" "interface.shutdown" (List.hd denied).Session.action

let test_monitor_logs_everything () =
  let session = full_privilege_session () in
  ignore (Session.exec_many session [ "connect r4"; "show vlan"; "ping 10.1.10.1"; "bogus" ]);
  checki "four entries" 4 (Session.command_count session);
  let log = Session.log session in
  checkb "ordered seq" true
    (List.mapi (fun i (e : Session.log_entry) -> e.seq = i + 1) log |> List.for_all Fun.id)

let test_monitor_malformed_logged_denied () =
  let session = full_privilege_session () in
  (match Session.exec session "launch the missiles" with
  | Error (Session.Bad_command _) -> ()
  | _ -> Alcotest.fail "expected Bad_command");
  checki "denied" 1 (Session.denied_count session)

let test_session_escalation () =
  let _, em = build_twin () in
  let privilege =
    Privilege.of_predicates [ Privilege.allow ~actions:[ "show.*" ] ~nodes:[ "r4" ] () ]
  in
  let session = Twin.open_session ~privilege em in
  ignore (Session.exec session "connect r4");
  checkb "denied before" true (Result.is_error (Session.exec session "ping 10.1.10.1"));
  Session.escalate session (Privilege.allow ~actions:[ "diag.*" ] ~nodes:[ "r4" ] ());
  checkb "allowed after" true (Result.is_ok (Session.exec session "ping 10.1.10.1"));
  checkb "escalation logged" true
    (List.exists
       (fun (e : Session.log_entry) -> e.command = "escalate")
       (Session.log session))

let test_exec_failed_surfaces () =
  let session = full_privilege_session () in
  ignore (Session.exec session "connect r4");
  match Session.exec session "configure no access-list GHOST" with
  | Error (Session.Exec_failed _) -> ()
  | _ -> Alcotest.fail "expected Exec_failed"

let test_twin_edits_do_not_touch_production () =
  let net, em = build_twin () in
  let session = Twin.open_session ~privilege:Privilege.allow_all em in
  ignore (Session.exec_many session [ "connect r4"; "configure interface eth0 shutdown" ]);
  (* The production network object is untouched. *)
  let prod_iface = Option.get (Ast.find_interface "eth0" (Network.config_exn "r4" net)) in
  checkb "production untouched" true prod_iface.Ast.enabled;
  let twin_iface =
    Option.get (Ast.find_interface "eth0" (Network.config_exn "r4" (Emulation.network em)))
  in
  checkb "twin changed" false twin_iface.Ast.enabled

let test_env_stubs () =
  let net = Enterprise.build () in
  (* A deliberately tiny slice: both endpoints behind r4; everything else
     is environment. *)
  let em = Twin.build ~env_stubs:true ~production:net ~endpoints:[ "h1"; "h2" ] () in
  let twin_net = Emulation.network em in
  let names = Network.node_names twin_net in
  let stubs = List.filter (fun n -> String.length n > 4 && String.sub n 0 4 = "env-") names in
  checkb "stubs exist" true (stubs <> []);
  (* Boundary next hops answer pings from inside the slice: r4's uplink
     peers (r2, r6, r5) are stubbed, so their transit addresses are alive. *)
  let session = Twin.open_session ~privilege:Privilege.allow_all em in
  ignore (Session.exec session "connect r4");
  let r4 = Network.config_exn "r4" twin_net in
  let uplink_peer_alive =
    List.exists
      (fun (i : Ast.interface) ->
        match i.addr with
        | Some a when i.enabled && i.switchport = None ->
            (* The peer holds the other address of the /30. *)
            let subnet = Ifaddr.subnet a in
            let peer_addr =
              if Ipv4.equal (Ifaddr.address a) (Prefix.host subnet 1) then
                Prefix.host subnet 2
              else Prefix.host subnet 1
            in
            (match Session.exec session ("ping " ^ Ipv4.to_string peer_addr) with
            | Ok out ->
                String.length out > 0
                && (let ok = ref false in
                    String.iteri
                      (fun idx _ ->
                        if idx + 3 <= String.length out && String.sub out idx 3 = "5/5"
                        then ok := true)
                      out;
                    !ok)
            | Error _ -> false)
        | _ -> false)
      r4.interfaces
  in
  checkb "boundary next hop pingable" true uplink_peer_alive;
  (* Stubs carry no secrets and no onward links. *)
  List.iter
    (fun stub ->
      let cfg = Network.config_exn stub twin_net in
      checkb (stub ^ " secretless") true (cfg.Ast.secrets = []);
      checkb (stub ^ " leafy") true
        (Heimdall_net.Topology.degree stub (Network.topology twin_net) >= 1))
    stubs;
  (* And the real outside devices are still absent. *)
  checkb "r8 hidden" true (not (List.mem "r8" names))

let test_env_stubs_off_by_default () =
  let net = Enterprise.build () in
  let em = Twin.build ~production:net ~endpoints:[ "h1"; "h2" ] () in
  checkb "no stubs" true
    (List.for_all
       (fun n -> not (String.length n > 4 && String.sub n 0 4 = "env-"))
       (Network.node_names (Emulation.network em)))

let suite =
  [
    Alcotest.test_case "command parse show" `Quick test_command_parse_show;
    Alcotest.test_case "command parse configure" `Quick test_command_parse_configure;
    Alcotest.test_case "command parse errors" `Quick test_command_parse_errors;
    Alcotest.test_case "command action mapping" `Quick test_command_action_mapping;
    Alcotest.test_case "command accepted forms" `Quick test_command_roundtrip_to_string;
    Alcotest.test_case "slicer strategies ordering" `Quick test_slicer_strategies;
    Alcotest.test_case "slicer includes gateways" `Quick test_slicer_includes_gateways;
    Alcotest.test_case "slicer unknown endpoints" `Quick test_slicer_unknown_endpoints;
    Alcotest.test_case "slice_network restricts" `Quick test_slice_network_restricts;
    Alcotest.test_case "twin configs scrubbed" `Quick test_twin_scrubbed;
    Alcotest.test_case "twin rejects unscrubbed" `Quick test_twin_rejects_unscrubbed;
    Alcotest.test_case "emulation apply/changes" `Quick test_emulation_apply_and_changes;
    Alcotest.test_case "emulation dataplane invalidation" `Quick
      test_emulation_dataplane_invalidation;
    Alcotest.test_case "emulation erase" `Quick test_emulation_erase;
    Alcotest.test_case "emulation ping/reload" `Quick test_emulation_ping;
    Alcotest.test_case "presentation leaks no secrets" `Quick test_presentation_no_secrets;
    Alcotest.test_case "session requires connect" `Quick test_session_requires_connect;
    Alcotest.test_case "session unknown node" `Quick test_session_unknown_node;
    Alcotest.test_case "monitor denies out of spec" `Quick test_monitor_denies_out_of_spec;
    Alcotest.test_case "monitor logs everything" `Quick test_monitor_logs_everything;
    Alcotest.test_case "monitor logs malformed as denied" `Quick
      test_monitor_malformed_logged_denied;
    Alcotest.test_case "session escalation" `Quick test_session_escalation;
    Alcotest.test_case "exec failure surfaces" `Quick test_exec_failed_surfaces;
    Alcotest.test_case "twin edits isolated from production" `Quick
      test_twin_edits_do_not_touch_production;
    Alcotest.test_case "env stubs keep boundary alive" `Quick test_env_stubs;
    Alcotest.test_case "env stubs off by default" `Quick test_env_stubs_off_by_default;
  ]
