(* Tests for the MSP layer: tickets, privilege generation, the RMM
   baseline, both workflows, and the attack helpers. *)

open Heimdall_net
open Heimdall_control
open Heimdall_privilege
open Heimdall_msp
module Enterprise = Heimdall_scenarios.Enterprise

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let ip = Ipv4.of_string

let fixture () =
  let net = Enterprise.build () in
  (net, Enterprise.policies net)

(* ---------------- Priv_gen ---------------- *)

let test_priv_gen_shapes () =
  let net, _ = fixture () in
  let ticket =
    Ticket.make ~id:"T" ~kind:Ticket.Routing ~description:"" ~endpoints:[ "h7"; "h1" ]
  in
  let slice = [ "h7"; "r7"; "r3"; "h1"; "r4" ] in
  let spec = Priv_gen.for_ticket ~network:net ~slice ticket in
  (* Reads allowed everywhere in the slice, including hosts. *)
  checkb "show on host" true (Privilege.allows spec (Privilege.request "show.route" "h7"));
  (* Repairs only on infrastructure. *)
  checkb "repair on router" true (Privilege.allows spec (Privilege.request "ospf.area" "r7"));
  checkb "no repair on host" false (Privilege.allows spec (Privilege.request "ospf.area" "h7"));
  (* Nothing outside the slice. *)
  checkb "outside denied" false (Privilege.allows spec (Privilege.request "show.route" "r8"));
  (* Never destructive or secret actions. *)
  checkb "no erase" false (Privilege.allows spec (Privilege.request "system.erase" "r7"));
  checkb "no secrets" false (Privilege.allows spec (Privilege.request "secret.set" "r7"))

let test_priv_gen_kind_specific () =
  let net, _ = fixture () in
  let slice = [ "r4"; "h2" ] in
  let vlan_spec =
    Priv_gen.for_ticket ~network:net ~slice
      (Ticket.make ~id:"T" ~kind:Ticket.Vlan ~description:"" ~endpoints:[])
  in
  checkb "vlan allows switchport" true
    (Privilege.allows vlan_spec (Privilege.request "vlan.switchport" "r4"));
  checkb "vlan denies acl" false
    (Privilege.allows vlan_spec (Privilege.request "acl.rule" "r4"));
  let routing_spec =
    Priv_gen.for_ticket ~network:net ~slice
      (Ticket.make ~id:"T" ~kind:Ticket.Routing ~description:"" ~endpoints:[])
  in
  checkb "routing allows ospf" true
    (Privilege.allows routing_spec (Privilege.request "ospf.network" "r4"));
  checkb "routing denies vlan" false
    (Privilege.allows routing_spec (Privilege.request "vlan.switchport" "r4"))

let test_priv_gen_escalation () =
  let pred = Priv_gen.escalation Ticket.Connectivity ~nodes:[ "fw1" ] in
  let spec = Privilege.of_predicates [ pred ] in
  checkb "escalated acl" true (Privilege.allows spec (Privilege.request "acl.rule" "fw1"))

(* ---------------- RMM baseline ---------------- *)

let test_rmm_full_access () =
  let net, _ = fixture () in
  let session = Rmm.open_direct_session net in
  ignore (Heimdall_twin.Session.exec session "connect r1");
  (* Direct access sees real secrets — the paper's core criticism. *)
  match Heimdall_twin.Session.exec session "show running-config" with
  | Ok output ->
      let prod = Network.config_exn "r1" net in
      checkb "secrets visible" true
        (Heimdall_config.Redact.leaked_secrets ~production:prod output <> [])
  | Error e -> Alcotest.fail (Heimdall_twin.Session.error_to_string e)

let test_rmm_changes_hit_production_model () =
  let net, _ = fixture () in
  let session = Rmm.open_direct_session net in
  ignore
    (Heimdall_twin.Session.exec_many session
       [ "connect r4"; "configure interface eth0 shutdown" ]);
  let after = Rmm.resulting_network session in
  checkb "changed" false
    (Option.get (Heimdall_config.Ast.find_interface "eth0" (Network.config_exn "r4" after)))
      .Heimdall_config.Ast.enabled

(* ---------------- Issues ---------------- *)

let test_issues_inject_and_probe () =
  let net, _ = fixture () in
  List.iter
    (fun (issue : Issue.t) ->
      let broken = issue.inject net in
      checkb (issue.name ^ " symptom") true (Issue.symptom_present issue broken);
      checkb (issue.name ^ " root cause exists") true
        (Network.config issue.root_cause broken <> None))
    (Enterprise.issues net)

(* ---------------- Workflows ---------------- *)

let test_workflow_current_resolves () =
  let net, _ = fixture () in
  List.iter
    (fun issue ->
      let run = Workflow.run_current ~production:net ~issue in
      checkb (issue.Issue.name ^ " resolved") true run.Workflow.resolved;
      checki (issue.Issue.name ^ " steps") 3 (List.length run.Workflow.steps);
      checkb "has time" true (Workflow.total_s run > 0.0))
    (Enterprise.issues net)

let test_workflow_heimdall_resolves () =
  let net, policies = fixture () in
  List.iter
    (fun issue ->
      let run = Workflow.run_heimdall ~production:net ~policies ~issue () in
      checkb (issue.Issue.name ^ " resolved") true run.Workflow.resolved;
      checki (issue.Issue.name ^ " steps") 6 (List.length run.Workflow.steps);
      checkb "approved" true
        (match run.Workflow.outcome with
        | Some o -> o.Heimdall_enforcer.Enforcer.approved
        | None -> false);
      checkb "no denials" true (run.Workflow.denied = 0))
    (Enterprise.issues net)

let test_workflow_heimdall_slower_but_bounded () =
  let net, policies = fixture () in
  let issue = List.hd (Enterprise.issues net) in
  let current = Workflow.run_current ~production:net ~issue in
  let heimdall = Workflow.run_heimdall ~production:net ~policies ~issue () in
  let overhead = Workflow.total_s heimdall -. Workflow.total_s current in
  checkb "has overhead" true (overhead > 0.0);
  checkb "overhead sane (< 120s)" true (overhead < 120.0)

let test_workflow_neighbor_strategy_fails_when_root_cause_hidden () =
  (* Under the Neighbor slice the university OSPF issue's root cause
     (acc5) is not adjacent to either ticket endpoint (dorm1, cs1 - both
     sit behind switches), so the fix must fail. *)
  let net = Heimdall_scenarios.University.build () in
  let policies = Heimdall_scenarios.University.policies net in
  let ospf = List.nth (Heimdall_scenarios.University.issues net) 1 in
  let run =
    Workflow.run_heimdall ~strategy:Heimdall_twin.Slicer.Neighbor ~production:net ~policies
      ~issue:ospf ()
  in
  checkb "not resolved under Neighbor" false run.Workflow.resolved;
  checkb "denials recorded" true (run.Workflow.denied > 0)

(* ---------------- Attacks ---------------- *)

let test_attack_exfiltration_baseline_leaks () =
  let net, _ = fixture () in
  let session = Rmm.open_direct_session net in
  let result = Attacks.exfiltrate ~production:net ~targets:[ "r1"; "r2" ] session in
  checkb "leaked" true (result.Attacks.leaked <> []);
  checki "no denials" 0 result.Attacks.denied

let test_attack_exfiltration_twin_blocks () =
  let net, _ = fixture () in
  let em = Heimdall_twin.Twin.build ~production:net ~endpoints:[ "h2"; "h3" ] () in
  let ticket =
    Ticket.make ~id:"T" ~kind:Ticket.Vlan ~description:"" ~endpoints:[ "h2"; "h3" ]
  in
  let slice = Heimdall_twin.Twin.slice_nodes ~production:net ~endpoints:[ "h2"; "h3" ] () in
  let privilege = Priv_gen.for_ticket ~network:net ~slice ticket in
  let session = Heimdall_twin.Twin.open_session ~privilege em in
  let result =
    Attacks.exfiltrate ~production:net ~targets:(Network.node_names net) session
  in
  checkb "nothing leaked" true (result.Attacks.leaked = []);
  checkb "denials" true (result.Attacks.denied > 0)

let test_attack_policy_damage () =
  let net, policies = fixture () in
  checki "no damage identical" 0 (Attacks.policy_damage ~policies ~before:net ~after:net);
  let broken =
    Result.get_ok
      (Network.apply_changes
         [
           Heimdall_config.Change.v "r4"
             (Heimdall_config.Change.Set_interface_enabled { iface = "vlan10"; enabled = false });
         ]
         net)
  in
  checkb "damage measured" true (Attacks.policy_damage ~policies ~before:net ~after:broken > 0)

let test_attack_command_builders () =
  let cmds =
    Attacks.malicious_acl_commands ~acl:"A" ~seq:5 ~src:(Prefix.of_string "10.0.0.0/8")
      ~dst:(Prefix.of_string "10.1.0.0/16") ~node:"r8"
  in
  checki "two commands" 2 (List.length cmds);
  List.iter
    (fun c -> checkb c true (Result.is_ok (Heimdall_twin.Command.parse_result c)))
    (cmds @ Attacks.erase_gateway_commands ~gateway:"r1")

(* ---------------- Ticket ---------------- *)

let test_ticket_to_string () =
  let t =
    Ticket.make ~id:"X-1" ~kind:Ticket.Vlan ~description:"broken" ~endpoints:[ "a"; "b" ]
  in
  let s = Ticket.to_string t in
  checkb "mentions id" true (String.length s > 0 && String.sub s 0 5 = "[X-1]");
  ignore (ip "1.2.3.4")

let suite =
  [
    Alcotest.test_case "priv_gen shapes" `Quick test_priv_gen_shapes;
    Alcotest.test_case "priv_gen kind specific" `Quick test_priv_gen_kind_specific;
    Alcotest.test_case "priv_gen escalation" `Quick test_priv_gen_escalation;
    Alcotest.test_case "rmm full access leaks" `Quick test_rmm_full_access;
    Alcotest.test_case "rmm changes hit production" `Quick test_rmm_changes_hit_production_model;
    Alcotest.test_case "issues inject and probe" `Quick test_issues_inject_and_probe;
    Alcotest.test_case "workflow current resolves" `Quick test_workflow_current_resolves;
    Alcotest.test_case "workflow heimdall resolves" `Quick test_workflow_heimdall_resolves;
    Alcotest.test_case "workflow overhead bounded" `Quick test_workflow_heimdall_slower_but_bounded;
    Alcotest.test_case "workflow neighbor slice insufficient" `Quick
      test_workflow_neighbor_strategy_fails_when_root_cause_hidden;
    Alcotest.test_case "attack exfiltration baseline leaks" `Quick
      test_attack_exfiltration_baseline_leaks;
    Alcotest.test_case "attack exfiltration twin blocks" `Quick
      test_attack_exfiltration_twin_blocks;
    Alcotest.test_case "attack policy damage" `Quick test_attack_policy_damage;
    Alcotest.test_case "attack command builders" `Quick test_attack_command_builders;
    Alcotest.test_case "ticket to string" `Quick test_ticket_to_string;
  ]
