(* Tests for the vendored JSON library. *)

module Json = Heimdall_json.Json

let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

let test_parse_scalars () =
  checkb "null" true (Json.of_string "null" = Json.Null);
  checkb "true" true (Json.of_string "true" = Json.Bool true);
  checkb "int" true (Json.of_string "42" = Json.Int 42);
  checkb "negative" true (Json.of_string "-7" = Json.Int (-7));
  checkb "float" true (Json.of_string "3.5" = Json.Float 3.5);
  checkb "exponent" true (Json.of_string "1e3" = Json.Float 1000.0);
  checkb "string" true (Json.of_string "\"hi\"" = Json.String "hi")

let test_parse_structures () =
  let v = Json.of_string {| {"a": [1, 2, {"b": null}], "c": "x"} |} in
  (match Json.member "a" v with
  | Some (Json.List [ Json.Int 1; Json.Int 2; Json.Obj [ ("b", Json.Null) ] ]) -> ()
  | _ -> Alcotest.fail "wrong list structure");
  checkb "member c" true (Json.member "c" v = Some (Json.String "x"));
  checkb "missing member" true (Json.member "zz" v = None)

let test_parse_escapes () =
  checkb "escapes" true
    (Json.of_string {|"a\"b\\c\nd\te"|} = Json.String "a\"b\\c\nd\te");
  checkb "unicode" true (Json.of_string {|"\u0041"|} = Json.String "A");
  checkb "two-byte" true (Json.of_string {|"é"|} = Json.String "\xc3\xa9")

let test_parse_errors () =
  List.iter
    (fun s -> checkb s true (Json.of_string_opt s = None))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}"; "[1 2]" ]

let test_roundtrip () =
  let doc =
    {| {"rules":[{"effect":"allow","actions":["show.*"],"resources":["r1","r2:eth0"]}],"n":3,"f":1.5,"ok":true,"nothing":null} |}
  in
  let v = Json.of_string doc in
  let v2 = Json.of_string (Json.to_string v) in
  checkb "roundtrip" true (Json.equal v v2);
  let v3 = Json.of_string (Json.to_string ~pretty:true v) in
  checkb "pretty roundtrip" true (Json.equal v v3)

let test_print_escaping () =
  checks "quotes escaped" {|"a\"b"|} (Json.to_string (Json.String "a\"b"));
  checks "control chars" "\"\\u0001\"" (Json.to_string (Json.String "\001"));
  checks "float trailing" "2.0" (Json.to_string (Json.Float 2.0))

let test_accessors () =
  checkb "to_int" true (Json.to_int_opt (Json.Int 3) = Some 3);
  checkb "to_int wrong" true (Json.to_int_opt (Json.String "3") = None);
  checkb "to_float accepts int" true (Json.to_float_opt (Json.Int 3) = Some 3.0);
  checkb "to_bool" true (Json.to_bool_opt (Json.Bool false) = Some false);
  checkb "to_list" true (Json.to_list_opt (Json.List [ Json.Null ]) = Some [ Json.Null ])

(* qcheck: printing then parsing is the identity on generated documents. *)
let arbitrary_json =
  let leaf =
    QCheck.Gen.oneof
      [
        QCheck.Gen.return Json.Null;
        QCheck.Gen.map (fun b -> Json.Bool b) QCheck.Gen.bool;
        QCheck.Gen.map (fun i -> Json.Int i) QCheck.Gen.small_signed_int;
        QCheck.Gen.map (fun s -> Json.String s) QCheck.Gen.small_string;
      ]
  in
  let gen =
    QCheck.Gen.sized (fun n ->
        QCheck.Gen.fix
          (fun self n ->
            if n <= 0 then leaf
            else
              QCheck.Gen.oneof
                [
                  leaf;
                  QCheck.Gen.map (fun l -> Json.List l)
                    (QCheck.Gen.list_size (QCheck.Gen.int_bound 4) (self (n / 2)));
                  QCheck.Gen.map (fun kvs -> Json.Obj kvs)
                    (QCheck.Gen.list_size (QCheck.Gen.int_bound 4)
                       (QCheck.Gen.pair (QCheck.Gen.small_string ~gen:QCheck.Gen.printable) (self (n / 2))));
                ])
          (min n 6))
  in
  QCheck.make gen ~print:(fun j -> Json.to_string j)

let prop_roundtrip =
  QCheck.Test.make ~count:200 ~name:"json print/parse roundtrip" arbitrary_json (fun j ->
      (* Object keys may repeat in generated docs; member lookup ignores
         later duplicates, but structural equality needs exact roundtrip,
         which to_string preserves. *)
      Json.equal (Json.of_string (Json.to_string j)) j)

let suite =
  [
    Alcotest.test_case "parse scalars" `Quick test_parse_scalars;
    Alcotest.test_case "parse structures" `Quick test_parse_structures;
    Alcotest.test_case "parse escapes" `Quick test_parse_escapes;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "print escaping" `Quick test_print_escaping;
    Alcotest.test_case "accessors" `Quick test_accessors;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
