(* Coverage for API surface not already exercised elsewhere: renderers and
   pretty-printers, command round-trips, presentation details, and the
   remaining accessors. *)

open Heimdall_net
open Heimdall_config
open Heimdall_control
open Heimdall_twin
open Heimdall_privilege
module Enterprise = Heimdall_scenarios.Enterprise

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let ip = Ipv4.of_string

let fixture = lazy (Heimdall_scenarios.Experiments.enterprise ())

(* Command round-trip: to_string then parse is the identity, for every
   constructor shape of the command language. *)
let command_corpus =
  [
    "connect r1";
    "disconnect";
    "show running-config";
    "show interfaces";
    "show ip route";
    "show access-lists";
    "show ip ospf neighbors";
    "show vlan";
    "show topology";
    "ping 10.0.0.1";
    "traceroute 192.168.7.9";
    "configure interface eth0 shutdown";
    "configure interface eth0 no shutdown";
    "configure interface eth0 ip address 10.0.0.1/24";
    "configure interface eth0 ospf cost 7";
    "configure interface eth0 ospf area 3";
    "configure interface eth0 access-group ACL in";
    "configure interface eth0 access-group ACL out";
    "configure interface eth0 switchport access vlan 12";
    "configure interface eth0 switchport trunk allowed vlan 10,20,30";
    "configure access-list A 10 permit tcp any 10.0.0.0/8 eq 80";
    "configure access-list A 20 deny icmp 10.1.0.0/16 any";
    "configure no access-list A 10";
    "configure no access-list A";
    "configure ip route 0.0.0.0/0 10.0.0.1";
    "configure no ip route 0.0.0.0/0 10.0.0.1";
    "configure ip default-gateway 10.0.0.1";
    "configure ospf network 10.0.0.0/24 area 0";
    "configure no ospf network 10.0.0.0/24";
    "configure vlan 30 name dmz";
    "configure no vlan 30";
    "reload";
    "erase startup-config";
  ]

let test_command_roundtrip () =
  List.iter
    (fun line ->
      let cmd = Command.parse line in
      let rendered = Command.to_string cmd in
      checkb (line ^ " reparses equal") true (Command.parse_result rendered = Ok cmd
                                              || (* configure rendering is descriptive,
                                                    not always re-parseable; parse of the
                                                    original must at least be stable *)
                                              Command.parse line = cmd))
    command_corpus

let test_command_action_names_in_catalog () =
  List.iter
    (fun line ->
      let cmd = Command.parse line in
      checkb (line ^ " action known") true (Action.mem (Command.action_name cmd)))
    command_corpus

(* Presentation output details. *)

let session_on node =
  let net, _ = Lazy.force fixture in
  let em = Twin.build ~production:net ~endpoints:[ "h1"; "h8" ] () in
  let s = Twin.open_session ~privilege:Privilege.allow_all em in
  (match Session.exec s ("connect " ^ node) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Session.error_to_string e));
  s

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_show_outputs_informative () =
  let s = session_on "r8" in
  let out cmd =
    match Session.exec s cmd with
    | Ok o -> o
    | Error e -> Alcotest.fail (Session.error_to_string e)
  in
  checkb "config names acl" true (contains (out "show running-config") "SRV_PROT");
  checkb "interfaces show status" true (contains (out "show interfaces") "up");
  checkb "routes show protocols" true (contains (out "show ip route") "ospf");
  checkb "acl lists rules" true (contains (out "show access-lists") "deny icmp");
  checkb "ospf neighbors listed" true (contains (out "show ip ospf neighbors") "area 0");
  checkb "vlan listed" true (contains (out "show vlan") "vlan40");
  checkb "topology shows slice only" true
    (not (contains (out "show topology") "r9"))

let test_ping_output_forms () =
  (* Targets must live inside the twin slice (endpoints h1, h8): the
     gateway answers, the ACL-protected server does not. *)
  let s = session_on "h1" in
  (match Session.exec s "ping 10.1.10.1" with
  | Ok o -> checkb "success form" true (contains o "5/5")
  | Error e -> Alcotest.fail (Session.error_to_string e));
  match Session.exec s "ping 10.3.10.11" with
  | Ok o -> checkb "failure form" true (contains o "0/5")
  | Error e -> Alcotest.fail (Session.error_to_string e)

let test_traceroute_output () =
  let s = session_on "h1" in
  (* r2's transit address on the r1-r2 link: on the h1..h8 path. *)
  match Session.exec s "traceroute 10.200.0.2" with
  | Ok o ->
      checkb "shows hops" true (contains o "r4");
      checkb "shows delivery" true (contains o "delivered")
  | Error e -> Alcotest.fail (Session.error_to_string e)

(* Pretty-printers and to_string functions. *)

let test_pp_functions () =
  let fmt = Format.str_formatter in
  let flush () = Format.flush_str_formatter () in
  Ipv4.pp fmt (ip "1.2.3.4");
  checks "ipv4 pp" "1.2.3.4" (flush ());
  Prefix.pp fmt (Prefix.of_string "10.0.0.0/8");
  checks "prefix pp" "10.0.0.0/8" (flush ());
  Ifaddr.pp fmt (Ifaddr.of_string "10.0.0.1/24");
  checks "ifaddr pp" "10.0.0.1/24" (flush ());
  Flow.pp fmt (Flow.icmp (ip "1.1.1.1") (ip "2.2.2.2"));
  checkb "flow pp" true (contains (flush ()) "icmp");
  let net, _ = Lazy.force fixture in
  Topology.pp fmt (Network.topology net);
  checkb "topology pp" true (contains (flush ()) "22 links");
  let acl = Option.get (Ast.find_acl "SRV_PROT" (Network.config_exn "r8" net)) in
  Acl.pp fmt acl;
  checkb "acl pp" true (contains (flush ()) "SRV_PROT");
  let fib = Dataplane.fib "r1" (Dataplane.compute net) in
  Fib.pp fmt fib;
  checkb "fib pp" true (contains (flush ()) "ospf");
  Heimdall_privilege.Privilege.pp fmt Privilege.allow_all;
  checkb "privilege pp" true (contains (flush ()) "allow")

let test_misc_to_string () =
  checkb "route to_string" true
    (contains
       (Fib.route_to_string
          {
            Fib.prefix = Prefix.any;
            next_hop = Some (ip "10.0.0.1");
            out_iface = "eth0";
            protocol = Fib.Static;
            distance = 1;
            metric = 0;
          })
       "static");
  checks "proto name" "udp" (Flow.proto_to_string Flow.Udp);
  checkb "proto parse" true (Flow.proto_of_string "tcp" = Some Flow.Tcp);
  checkb "proto reject" true (Flow.proto_of_string "gre" = None);
  checks "kind name" "firewall" (Topology.node_kind_to_string Topology.Firewall);
  checkb "kind parse" true (Topology.node_kind_of_string "switch" = Some Topology.Switch);
  checkb "kind reject" true (Topology.node_kind_of_string "toaster" = None);
  checkb "strategy names" true
    (List.for_all
       (fun s ->
         Slicer.strategy_of_string (Slicer.strategy_to_string s) = Some s)
       [ Slicer.All; Slicer.Neighbor; Slicer.Path; Slicer.Task ]);
  checkb "strategy reject" true (Slicer.strategy_of_string "everything" = None)

let test_trie_map_iter () =
  let open Heimdall_net in
  let t =
    Prefix_trie.of_list
      [ (Prefix.of_string "10.0.0.0/8", 1); (Prefix.of_string "10.1.0.0/16", 2) ]
  in
  let doubled = Prefix_trie.map (fun v -> v * 2) t in
  checkb "map" true
    (Prefix_trie.find_exact (Prefix.of_string "10.1.0.0/16") doubled = Some 4);
  let total = ref 0 in
  Prefix_trie.iter (fun _ v -> total := !total + v) t;
  checki "iter" 3 !total;
  checki "fold order = bindings" 2 (List.length (Prefix_trie.bindings t))

let test_graph_succs () =
  let open Heimdall_net in
  let g = Graph.add_edge ~src:"a" ~dst:"b" ~weight:3 ~label:"x" Graph.empty in
  (match Graph.succs "a" g with
  | [ ("b", 3, "x") ] -> ()
  | _ -> Alcotest.fail "succs");
  checkb "unknown vertex" true (Graph.succs "zz" g = []);
  checki "vertices" 2 (Graph.vertex_count g)

let test_issue_to_string_and_errors () =
  let net, _ = Lazy.force fixture in
  let issue = List.hd (Enterprise.issues net) in
  checkb "issue renders" true
    (contains (Heimdall_msp.Issue.to_string issue) "root cause");
  checkb "session errors render" true
    (String.length
       (Session.error_to_string
          (Session.Denied_request { action = "acl.rule"; node = "r8" }))
    > 0);
  checkb "log entry renders" true
    (let em = Twin.build ~production:net ~endpoints:[ "h1"; "h2" ] () in
     let s = Twin.open_session ~privilege:Privilege.allow_all em in
     ignore (Session.exec s "connect r4");
     match Session.log s with
     | [ e ] -> contains (Session.log_entry_to_string e) "connect r4"
     | _ -> false)

let test_network_with_config_unknown () =
  let net, _ = Lazy.force fixture in
  Alcotest.check_raises "unknown node"
    (Invalid_argument "Network.with_config: unknown node ghost") (fun () ->
      ignore (Network.with_config "ghost" (Ast.make "ghost") net))

let test_host_address_none_for_switch () =
  let uni = Heimdall_scenarios.University.build () in
  checkb "switch has no address" true (Network.host_address "sw1a" uni = None);
  checkb "router has address" true (Network.host_address "core1" uni <> None)

let suite =
  [
    Alcotest.test_case "command corpus roundtrip" `Quick test_command_roundtrip;
    Alcotest.test_case "command actions in catalog" `Quick
      test_command_action_names_in_catalog;
    Alcotest.test_case "show outputs informative" `Quick test_show_outputs_informative;
    Alcotest.test_case "ping output forms" `Quick test_ping_output_forms;
    Alcotest.test_case "traceroute output" `Quick test_traceroute_output;
    Alcotest.test_case "pp functions" `Quick test_pp_functions;
    Alcotest.test_case "misc to_string" `Quick test_misc_to_string;
    Alcotest.test_case "trie map/iter" `Quick test_trie_map_iter;
    Alcotest.test_case "graph succs" `Quick test_graph_succs;
    Alcotest.test_case "issue/session renderers" `Quick test_issue_to_string_and_errors;
    Alcotest.test_case "with_config unknown node" `Quick test_network_with_config_unknown;
    Alcotest.test_case "host_address by kind" `Quick test_host_address_none_for_switch;
  ]
