(* Deep-dive integration tests on the enterprise network: OSPF route
   selection, the out-of-IGP backup link, the server-protection ACL, and
   default-route origination. *)

open Heimdall_net
open Heimdall_config
open Heimdall_control
open Heimdall_verify

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let ip = Ipv4.of_string

let fixture = lazy (Heimdall_scenarios.Experiments.enterprise ())

let trace net flow = Trace.trace (Dataplane.compute net) flow

let test_default_originates_everywhere () =
  let net, _ = Lazy.force fixture in
  let dp = Dataplane.compute net in
  List.iter
    (fun r ->
      if r <> "r1" then
        match Fib.lookup (ip "203.0.113.2") (Dataplane.fib r dp) with
        | Some route ->
            checkb (r ^ " default via ospf") true (route.Fib.protocol = Fib.Ospf)
        | None -> Alcotest.fail (r ^ " has no default route"))
    [ "r2"; "r3"; "r4"; "r5"; "r6"; "r7"; "r8"; "r9" ]

let test_backup_link_unused () =
  let net, _ = Lazy.force fixture in
  (* r6-r7 is wired but outside the IGP: no FIB entry may use it.  The
     link's transit interfaces exist; check no OSPF adjacency formed. *)
  let adjs = Ospf.adjacencies net (L2.compute net) in
  checkb "no r6-r7 adjacency" true
    (not
       (List.exists
          (fun ((a : Ospf.iface), (b : Ospf.iface)) ->
            (a.router = "r6" && b.router = "r7") || (a.router = "r7" && b.router = "r6"))
          adjs))

let test_server_acl_direction () =
  let net, _ = Lazy.force fixture in
  (* S1 -> servers: ICMP denied, TCP fine, and the reverse direction is
     open (the ACL is inbound-to-r8 only). *)
  checkb "icmp denied" false
    (Trace.is_delivered (trace net (Flow.icmp (ip "10.1.10.11") (ip "10.3.10.11"))));
  checkb "tcp allowed" true
    (Trace.is_delivered (trace net (Flow.tcp ~dst_port:80 (ip "10.1.10.11") (ip "10.3.10.11"))));
  checkb "reverse open" true
    (Trace.is_delivered (trace net (Flow.icmp (ip "10.3.10.11") (ip "10.1.10.11"))));
  (* Other offices are unaffected. *)
  checkb "s2 icmp fine" true
    (Trace.is_delivered (trace net (Flow.icmp (ip "10.1.20.11") (ip "10.3.10.11"))))

let test_acl_covers_both_uplinks () =
  let net, _ = Lazy.force fixture in
  (* Force traffic over each of r8's two uplinks by shutting the other:
     the ACL must hold on both. *)
  let uplinks =
    List.filter_map
      (fun (l : Topology.link) ->
        if l.a.node = "r8" && l.b.node <> "h8" && l.b.node <> "h9" then Some l.a.iface
        else if l.b.node = "r8" && l.a.node <> "h8" && l.a.node <> "h9" then Some l.b.iface
        else None)
      (Topology.links (Network.topology net))
  in
  checki "two uplinks" 2 (List.length uplinks);
  List.iter
    (fun shut ->
      let broken =
        Result.get_ok
          (Network.apply_changes
             [ Change.v "r8" (Change.Set_interface_enabled { iface = shut; enabled = false }) ]
             net)
      in
      checkb ("denied via surviving uplink (shut " ^ shut ^ ")") false
        (Trace.is_delivered (trace broken (Flow.icmp (ip "10.1.10.11") (ip "10.3.10.11"))));
      checkb ("tcp still flows (shut " ^ shut ^ ")") true
        (Trace.is_delivered
           (trace broken (Flow.tcp ~dst_port:80 (ip "10.1.10.11") (ip "10.3.10.11")))))
    uplinks

let test_ospf_costs_steer () =
  let net, _ = Lazy.force fixture in
  (* Raising the cost of r4's uplink to r2 pushes S1 traffic through the
     r4-r5 or r4-r6 side links. *)
  let uplink =
    List.find_map
      (fun (l : Topology.link) ->
        if l.a.node = "r4" && l.b.node = "r2" then Some l.a.iface
        else if l.b.node = "r4" && l.a.node = "r2" then Some l.b.iface
        else None)
      (Topology.links (Network.topology net))
    |> Option.get
  in
  let steered =
    Result.get_ok
      (Network.apply_changes
         [ Change.v "r4" (Change.Set_ospf_cost { iface = uplink; cost = Some 1000 }) ]
         net)
  in
  let result = trace steered (Flow.icmp (ip "10.1.10.11") (ip "10.1.20.11")) in
  checkb "still delivered" true (Trace.is_delivered result);
  let hops = List.map (fun (h : Trace.hop) -> h.node) (Trace.hops result) in
  checkb "avoids r2" true (not (List.mem "r2" hops))

let test_mined_isolated_policy_exact () =
  let _, policies = Lazy.force fixture in
  let isolated = List.filter (fun (p : Policy.t) -> p.intent = Policy.Isolated) policies in
  checki "exactly one isolated policy" 1 (List.length isolated);
  let p = List.hd isolated in
  checkb "right pair" true
    (p.src_label = "10.1.10.0/24" && p.dst_label = "10.3.10.0/24")

let test_host_gateways_resolve () =
  let net, _ = Lazy.force fixture in
  List.iter
    (fun h ->
      match (Network.config_exn h net).default_gateway with
      | Some gw ->
          checkb (h ^ " gateway owned") true (Network.owner_of_address gw net <> None)
      | None -> Alcotest.fail (h ^ " has no gateway"))
    [ "h1"; "h2"; "h3"; "h4"; "h5"; "h6"; "h7"; "h8"; "h9" ]

let suite =
  [
    Alcotest.test_case "default route originates everywhere" `Quick
      test_default_originates_everywhere;
    Alcotest.test_case "backup link outside IGP" `Quick test_backup_link_unused;
    Alcotest.test_case "server acl direction" `Quick test_server_acl_direction;
    Alcotest.test_case "acl covers both uplinks" `Quick test_acl_covers_both_uplinks;
    Alcotest.test_case "ospf costs steer traffic" `Quick test_ospf_costs_steer;
    Alcotest.test_case "mined isolated policy exact" `Quick test_mined_isolated_policy_exact;
    Alcotest.test_case "host gateways resolve" `Quick test_host_gateways_resolve;
  ]
