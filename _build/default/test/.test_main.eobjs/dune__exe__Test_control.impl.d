test/test_control.ml: Alcotest Ast Bgp Change Dataplane Fib Heimdall_config Heimdall_control Heimdall_net Heimdall_scenarios Ifaddr Ipv4 L2 List Network Option Ospf Prefix Result Topology
