test/test_json.ml: Alcotest Heimdall_json List QCheck QCheck_alcotest
