test/test_config.ml: Acl Alcotest Ast Change Flow Heimdall_config Heimdall_net Ifaddr Ipv4 List Option Parser Prefix Printer QCheck QCheck_alcotest Redact Result String
