test/test_net.ml: Acl Alcotest Flow Graph Hashtbl Heimdall_net Ifaddr Ipv4 List Option Prefix Prefix_trie QCheck QCheck_alcotest Topology
