test/test_privilege.ml: Action Alcotest Dsl Heimdall_net Heimdall_privilege Json_frontend List Printf Privilege QCheck QCheck_alcotest String Topology
