(* Tests for the configuration language: AST helpers, parser/printer
   round-trips, the change engine (diff/apply), and secret redaction. *)

open Heimdall_net
open Heimdall_config

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let sample_config () =
  Ast.make
    ~interfaces:
      [
        Ast.interface ~addr:(Ifaddr.of_string "10.0.1.1/24") ~ospf_cost:5
          ~description:"to r2" "eth0";
        Ast.interface ~addr:(Ifaddr.of_string "10.0.2.1/24") ~acl_in:"BLOCK" "eth1";
        Ast.interface ~switchport:(Ast.Access 10) "eth2";
        Ast.interface ~switchport:(Ast.Trunk [ 10; 20 ]) "eth3";
        Ast.interface ~addr:(Ifaddr.of_string "10.0.10.1/24") "vlan10";
        Ast.interface ~enabled:false "eth4";
      ]
    ~vlans:[ (10, "office"); (20, "lab") ]
    ~acls:
      [
        Acl.make "BLOCK"
          [
            Acl.rule ~proto:(Acl.Proto Flow.Tcp) ~dst_port:(Acl.Eq 22) ~seq:10 Acl.Deny
              Prefix.any (Prefix.of_string "10.0.2.0/24");
            Acl.rule ~seq:20 Acl.Permit Prefix.any Prefix.any;
          ];
      ]
    ~static_routes:
      [
        { Ast.sr_prefix = Prefix.any;
          sr_next_hop = Ipv4.of_string "10.0.1.2";
          sr_distance = 1 };
        { Ast.sr_prefix = Prefix.of_string "10.9.0.0/16";
          sr_next_hop = Ipv4.of_string "10.0.2.2";
          sr_distance = 200 };
      ]
    ~ospf:
      {
        Ast.router_id = Some (Ipv4.of_string "1.1.1.1");
        networks = [ (Prefix.of_string "10.0.1.0/24", 0); (Prefix.of_string "10.0.2.0/24", 1) ];
        default_originate = true;
      }
    ~bgp:
      {
        Ast.local_as = 65001;
        bgp_neighbors = [ { Ast.peer = Ipv4.of_string "203.0.113.1"; remote_as = 65002 } ];
        advertised = [ Prefix.of_string "10.0.0.0/16" ];
      }
    ~default_gateway:(Ipv4.of_string "10.0.1.254")
    ~secrets:
      [
        Ast.Enable_secret "s3cret";
        Ast.Snmp_community "commun1ty";
        Ast.Ipsec_key ("psk-abc", Ipv4.of_string "203.0.113.1");
        Ast.User_password ("admin", "hunter2");
      ]
    "r1"

(* ---------------- AST helpers ---------------- *)

let test_ast_lookup_update () =
  let c = sample_config () in
  checkb "find" true (Ast.find_interface "eth0" c <> None);
  checkb "missing" true (Ast.find_interface "eth9" c = None);
  let c2 = Ast.update_interface (Ast.interface ~enabled:false "eth0") c in
  (match Ast.find_interface "eth0" c2 with
  | Some i -> checkb "replaced" false i.Ast.enabled
  | None -> Alcotest.fail "eth0 vanished");
  checki "same count" (List.length c.interfaces) (List.length c2.interfaces)

let test_ast_addresses () =
  let c = sample_config () in
  checki "addressed ifaces" 3 (List.length (Ast.addresses c));
  checkb "interface_addr" true
    (Ast.interface_addr c "eth0" = Some (Ifaddr.of_string "10.0.1.1/24"))

let test_ast_secrets () =
  let c = sample_config () in
  checkb "has" true (Ast.has_secret_value "hunter2" c);
  checkb "hasn't" false (Ast.has_secret_value "nope" c)

(* ---------------- Printer/parser ---------------- *)

let test_roundtrip () =
  let c = sample_config () in
  let text = Printer.render c in
  let c2 = Parser.parse text in
  checkb "roundtrip equal" true (Ast.equal c c2);
  (* And idempotent: render(parse(render)) = render. *)
  checks "stable render" text (Printer.render c2)

let test_line_count () =
  let c = sample_config () in
  let lines =
    Printer.render c |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  checki "line_count matches" (List.length lines) (Printer.line_count c)

let test_parse_minimal () =
  let c = Parser.parse "hostname sw1\n" in
  checks "hostname" "sw1" c.Ast.hostname;
  checkb "no ospf" true (c.Ast.ospf = None)

let test_parse_errors () =
  let cases =
    [
      ("", "missing hostname");
      ("hostname a\nhostname b\n", "duplicate hostname");
      ("hostname a\ninterface eth0\ninterface eth0\n", "duplicate interface");
      ("hostname a\n bogus indent\n", "indented outside stanza");
      ("hostname a\nfrobnicate 1\n", "unknown command");
      ("hostname a\ninterface eth0\n ip address banana\n", "bad address");
      ("hostname a\nvlan 3\n!\n", "vlan without name");
      ("hostname a\naccess-list L 10 permit tcp any any eq x\n", "bad port");
    ]
  in
  List.iter
    (fun (text, label) ->
      match Parser.parse_result text with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("expected parse error: " ^ label))
    cases

let test_parse_error_line_numbers () =
  match Parser.parse_result "hostname a\ninterface eth0\n ip address banana\n" with
  | Error (line, _) -> checki "line 3" 3 line
  | Ok _ -> Alcotest.fail "expected error"

let test_parse_acl_rule () =
  let r = Parser.parse_acl_rule "10 deny tcp 10.0.2.0/24 any eq 80" in
  checki "seq" 10 r.Acl.seq;
  checkb "action" true (r.Acl.action = Acl.Deny);
  checkb "dst port" true (r.Acl.dst_port = Acl.Eq 80);
  checkb "src port" true (r.Acl.src_port = Acl.Any_port);
  let r2 = Parser.parse_acl_rule "20 permit udp any range 5000 5010 10.1.0.0/16" in
  checkb "src range" true (r2.Acl.src_port = Acl.Range (5000, 5010))

(* ---------------- Change: apply ---------------- *)

let test_apply_interface_ops () =
  let c = sample_config () in
  let apply op = Result.get_ok (Change.apply op c) in
  let c2 = apply (Change.Set_interface_enabled { iface = "eth0"; enabled = false }) in
  checkb "shut" false (Option.get (Ast.find_interface "eth0" c2)).Ast.enabled;
  let c3 =
    apply (Change.Set_interface_addr { iface = "eth0"; addr = Some (Ifaddr.of_string "10.5.5.1/24") })
  in
  checkb "renumbered" true
    (Ast.interface_addr c3 "eth0" = Some (Ifaddr.of_string "10.5.5.1/24"));
  checkb "missing iface" true
    (Result.is_error (Change.apply (Change.Set_ospf_cost { iface = "zz"; cost = None }) c))

let test_apply_acl_ops () =
  let c = sample_config () in
  let rule = Acl.rule ~seq:15 Acl.Permit Prefix.any Prefix.any in
  let c2 = Result.get_ok (Change.apply (Change.Acl_set_rule { acl = "BLOCK"; rule }) c) in
  checki "3 rules" 3 (Acl.rule_count (Option.get (Ast.find_acl "BLOCK" c2)));
  let c3 = Result.get_ok (Change.apply (Change.Acl_remove_rule { acl = "BLOCK"; seq = 15 }) c2) in
  checki "back to 2" 2 (Acl.rule_count (Option.get (Ast.find_acl "BLOCK" c3)));
  checkb "remove missing rule" true
    (Result.is_error (Change.apply (Change.Acl_remove_rule { acl = "BLOCK"; seq = 99 }) c));
  checkb "remove missing acl" true
    (Result.is_error (Change.apply (Change.Acl_remove { acl = "NOPE" }) c));
  (* Setting a rule on an unknown ACL creates it (Cisco semantics). *)
  let c4 = Result.get_ok (Change.apply (Change.Acl_set_rule { acl = "NEW"; rule }) c) in
  checkb "created" true (Ast.find_acl "NEW" c4 <> None)

let test_apply_route_ops () =
  let c = sample_config () in
  let route =
    { Ast.sr_prefix = Prefix.of_string "172.16.0.0/12";
      sr_next_hop = Ipv4.of_string "10.0.1.9";
      sr_distance = 1 }
  in
  let c2 = Result.get_ok (Change.apply (Change.Add_static_route route) c) in
  checki "added" 3 (List.length c2.static_routes);
  let c3 =
    Result.get_ok
      (Change.apply
         (Change.Remove_static_route
            { prefix = Prefix.of_string "172.16.0.0/12"; next_hop = Ipv4.of_string "10.0.1.9" })
         c2)
  in
  checki "removed" 2 (List.length c3.static_routes);
  checkb "remove missing" true
    (Result.is_error
       (Change.apply
          (Change.Remove_static_route
             { prefix = Prefix.of_string "9.9.9.0/24"; next_hop = Ipv4.of_string "1.1.1.1" })
          c))

let test_apply_ospf_vlan_ops () =
  let c = sample_config () in
  let c2 =
    Result.get_ok
      (Change.apply (Change.Ospf_set_network { prefix = Prefix.of_string "10.0.3.0/24"; area = 2 }) c)
  in
  checki "3 networks" 3 (List.length (Option.get c2.Ast.ospf).networks);
  let c3 =
    Result.get_ok
      (Change.apply (Change.Ospf_remove_network { prefix = Prefix.of_string "10.0.3.0/24" }) c2)
  in
  checki "back to 2" 2 (List.length (Option.get c3.Ast.ospf).networks);
  let c4 = Result.get_ok (Change.apply (Change.Set_vlan_name { vlan = 30; name = Some "dmz" }) c) in
  checkb "vlan added" true (List.mem_assoc 30 c4.Ast.vlans);
  checkb "vlan remove missing" true
    (Result.is_error (Change.apply (Change.Set_vlan_name { vlan = 99; name = None }) c))

let test_apply_secret_replaces_slot () =
  let c = sample_config () in
  let c2 = Result.get_ok (Change.apply (Change.Set_secret (Ast.Enable_secret "new")) c) in
  checki "same secret count" (List.length c.secrets) (List.length c2.secrets);
  checkb "replaced" true (Ast.has_secret_value "new" c2);
  checkb "old gone" false (Ast.has_secret_value "s3cret" c2)

(* ---------------- Change: diff ---------------- *)

let test_diff_empty () =
  let c = sample_config () in
  checki "no changes" 0 (List.length (Change.diff ~node:"r1" c c))

let test_diff_roundtrip () =
  let before = sample_config () in
  (* A representative multi-field edit. *)
  let after =
    before
    |> Ast.update_interface
         (Ast.interface ~addr:(Ifaddr.of_string "10.0.1.99/24") ~ospf_cost:7 "eth0")
    |> Ast.update_acl
         (Acl.make "BLOCK" [ Acl.rule ~seq:20 Acl.Permit Prefix.any Prefix.any ])
    |> fun c ->
    { c with Ast.static_routes = [ List.hd c.Ast.static_routes ]; default_gateway = None }
  in
  let changes = Change.diff ~node:"r1" before after in
  checkb "nonempty" true (changes <> []);
  match Change.apply_all changes (fun _ -> Some before) with
  | Ok [ ("r1", rebuilt) ] -> checkb "diff/apply roundtrip" true (Ast.equal rebuilt after)
  | Ok _ -> Alcotest.fail "unexpected node set"
  | Error m -> Alcotest.fail m

let test_diff_detects_acl_edit () =
  let before = sample_config () in
  let after =
    Ast.update_acl
      (Acl.make "BLOCK"
         [
           Acl.rule ~proto:(Acl.Proto Flow.Tcp) ~dst_port:(Acl.Eq 22) ~seq:10 Acl.Permit
             Prefix.any (Prefix.of_string "10.0.2.0/24");
           Acl.rule ~seq:20 Acl.Permit Prefix.any Prefix.any;
         ])
      before
  in
  let changes = Change.diff ~node:"r1" before after in
  checki "one change" 1 (List.length changes);
  match (List.hd changes).Change.op with
  | Change.Acl_set_rule { acl = "BLOCK"; rule } -> checki "rule 10" 10 rule.Acl.seq
  | _ -> Alcotest.fail "expected Acl_set_rule"

let test_change_action_names () =
  checks "shutdown" "interface.shutdown"
    (Change.op_action_name (Change.Set_interface_enabled { iface = "e"; enabled = false }));
  checks "up" "interface.up"
    (Change.op_action_name (Change.Set_interface_enabled { iface = "e"; enabled = true }));
  checks "acl" "acl.rule"
    (Change.op_action_name
       (Change.Acl_set_rule { acl = "A"; rule = Acl.rule ~seq:1 Acl.Permit Prefix.any Prefix.any }));
  checkb "iface scope" true
    (Change.target_iface (Change.Set_ospf_cost { iface = "eth1"; cost = None }) = Some "eth1");
  checkb "no scope" true (Change.target_iface (Change.Set_default_gateway None) = None)

let test_apply_all_unknown_node () =
  checkb "unknown node" true
    (Result.is_error
       (Change.apply_all
          [ Change.v "ghost" (Change.Set_default_gateway None) ]
          (fun _ -> None)))

(* qcheck: diff(c, mutate(c)) applied to c equals mutate(c). *)
let mutations =
  [
    (fun c -> Result.get_ok (Change.apply (Change.Set_interface_enabled { iface = "eth0"; enabled = false }) c));
    (fun c -> Result.get_ok (Change.apply (Change.Set_ospf_cost { iface = "eth0"; cost = Some 42 }) c));
    (fun c ->
      Result.get_ok
        (Change.apply
           (Change.Acl_set_rule
              { acl = "BLOCK"; rule = Acl.rule ~seq:5 Acl.Deny Prefix.any Prefix.any })
           c));
    (fun c -> Result.get_ok (Change.apply (Change.Set_default_gateway None) c));
    (fun c -> Result.get_ok (Change.apply (Change.Set_vlan_name { vlan = 77; name = Some "x" }) c));
    (fun c ->
      Result.get_ok
        (Change.apply
           (Change.Add_static_route
              { Ast.sr_prefix = Prefix.of_string "172.20.0.0/16";
                sr_next_hop = Ipv4.of_string "10.0.1.3";
                sr_distance = 5 })
           c));
  ]

let prop_diff_apply =
  QCheck.Test.make ~count:100 ~name:"diff/apply roundtrip under random mutations"
    (QCheck.list_of_size (QCheck.Gen.int_bound 4) (QCheck.int_bound (List.length mutations - 1)))
    (fun picks ->
      let before = sample_config () in
      let after = List.fold_left (fun c i -> (List.nth mutations i) c) before picks in
      let changes = Change.diff ~node:"r1" before after in
      match Change.apply_all changes (fun _ -> Some before) with
      | Ok [ ("r1", rebuilt) ] -> Ast.equal rebuilt after
      | Ok [] -> Ast.equal before after
      | Ok _ -> false
      | Error _ -> false)

let prop_parse_print_roundtrip =
  QCheck.Test.make ~count:100 ~name:"random mutated config parser roundtrip"
    (QCheck.list_of_size (QCheck.Gen.int_bound 4) (QCheck.int_bound (List.length mutations - 1)))
    (fun picks ->
      let c = List.fold_left (fun c i -> (List.nth mutations i) c) (sample_config ()) picks in
      Ast.equal c (Parser.parse (Printer.render c)))

(* ---------------- Redaction ---------------- *)

let test_scrub () =
  let c = sample_config () in
  let s = Redact.scrub c in
  checkb "scrubbed" true (Redact.is_scrubbed s);
  checkb "original not" false (Redact.is_scrubbed c);
  checki "secret slots kept" (List.length c.secrets) (List.length s.secrets);
  checkb "username preserved" true
    (List.exists
       (function Ast.User_password ("admin", v) -> v = Redact.placeholder | _ -> false)
       s.Ast.secrets);
  (* Rendering a scrubbed config leaks nothing. *)
  checkb "no leaks in render" true
    (Redact.leaked_secrets ~production:c (Printer.render s) = [])

let test_leak_detection () =
  let c = sample_config () in
  let leaks = Redact.leaked_secrets ~production:c "the key is psk-abc and pw hunter2" in
  checkb "found both" true (List.sort compare leaks = [ "hunter2"; "psk-abc" ]);
  checkb "clean text" true (Redact.leaked_secrets ~production:c "nothing here" = [])

let suite =
  [
    Alcotest.test_case "ast lookup/update" `Quick test_ast_lookup_update;
    Alcotest.test_case "ast addresses" `Quick test_ast_addresses;
    Alcotest.test_case "ast secrets" `Quick test_ast_secrets;
    Alcotest.test_case "printer/parser roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "line count" `Quick test_line_count;
    Alcotest.test_case "parse minimal" `Quick test_parse_minimal;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse error line numbers" `Quick test_parse_error_line_numbers;
    Alcotest.test_case "parse acl rule" `Quick test_parse_acl_rule;
    Alcotest.test_case "apply interface ops" `Quick test_apply_interface_ops;
    Alcotest.test_case "apply acl ops" `Quick test_apply_acl_ops;
    Alcotest.test_case "apply route ops" `Quick test_apply_route_ops;
    Alcotest.test_case "apply ospf/vlan ops" `Quick test_apply_ospf_vlan_ops;
    Alcotest.test_case "apply secret replaces slot" `Quick test_apply_secret_replaces_slot;
    Alcotest.test_case "diff empty" `Quick test_diff_empty;
    Alcotest.test_case "diff/apply roundtrip" `Quick test_diff_roundtrip;
    Alcotest.test_case "diff detects acl edit" `Quick test_diff_detects_acl_edit;
    Alcotest.test_case "change action names" `Quick test_change_action_names;
    Alcotest.test_case "apply_all unknown node" `Quick test_apply_all_unknown_node;
    QCheck_alcotest.to_alcotest prop_diff_apply;
    QCheck_alcotest.to_alcotest prop_parse_print_roundtrip;
    Alcotest.test_case "scrub secrets" `Quick test_scrub;
    Alcotest.test_case "leak detection" `Quick test_leak_detection;
  ]
