(* Tests for the paper's §7 extensions — emergency mode and privilege
   escalation — and for the network loader. *)

open Heimdall_net
open Heimdall_control
open Heimdall_privilege
open Heimdall_msp
module Enterprise = Heimdall_scenarios.Enterprise

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let ip = Ipv4.of_string

let fixture () =
  let net = Enterprise.build () in
  (net, Enterprise.policies net)

(* ---------------- Emergency mode ---------------- *)

let emergency_privilege =
  Privilege.of_predicates
    [
      Privilege.allow ~actions:[ "show.*"; "diag.*" ] ~nodes:[ "*" ] ();
      Privilege.allow
        ~actions:[ "interface.up"; "interface.shutdown"; "route.static"; "ospf.cost" ]
        ~nodes:[ "r*" ] ();
    ]

let open_emergency () =
  let net, policies = fixture () in
  ( net,
    policies,
    Emergency.open_session ~reason:"core outage, twin unavailable" ~production:net
      ~policies ~privilege:emergency_privilege () )

let test_emergency_reads_production () =
  let _, _, s = open_emergency () in
  (match Emergency.exec s "connect r1" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Emergency.refusal_to_string e));
  match Emergency.exec s "show ip route" with
  | Ok out -> checkb "live state" true (String.length out > 0)
  | Error e -> Alcotest.fail (Emergency.refusal_to_string e)

let test_emergency_applies_safe_change () =
  let net, _, s = open_emergency () in
  ignore (Emergency.exec s "connect r4");
  (match Emergency.exec s "configure interface eth0 ospf cost 42" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Emergency.refusal_to_string e));
  checki "one applied" 1 (List.length (Emergency.applied s));
  (* Production (the session's view) reflects the change... *)
  let cfg = Network.config_exn "r4" (Emergency.production s) in
  checkb "applied" true
    ((Option.get (Heimdall_config.Ast.find_interface "eth0" cfg)).Heimdall_config.Ast.ospf_cost
    = Some 42);
  (* ...while the caller's original network value is untouched. *)
  let orig = Network.config_exn "r4" net in
  checkb "original immutable" true
    ((Option.get (Heimdall_config.Ast.find_interface "eth0" orig)).Heimdall_config.Ast.ospf_cost
    = None)

let test_emergency_refuses_policy_breaking_change () =
  let _, _, s = open_emergency () in
  ignore (Emergency.exec s "connect r4");
  (* Shutting the office SVI would break every S1 policy. *)
  match Emergency.exec s "configure interface vlan10 shutdown" with
  | Error (Emergency.Would_violate reasons) -> checkb "reasons" true (reasons <> [])
  | Ok _ -> Alcotest.fail "policy-breaking change applied!"
  | Error e -> Alcotest.fail (Emergency.refusal_to_string e)

let test_emergency_denies_out_of_spec () =
  let _, _, s = open_emergency () in
  ignore (Emergency.exec s "connect r4");
  (match Emergency.exec s "configure access-list X 10 permit ip any any" with
  | Error (Emergency.Denied { action = "acl.rule"; _ }) -> ()
  | _ -> Alcotest.fail "expected denial");
  (* Destructive commands are always refused, even under allow-all. *)
  let net, policies = fixture () in
  let s2 =
    Emergency.open_session ~reason:"r" ~production:net ~policies
      ~privilege:Privilege.allow_all ()
  in
  ignore (Emergency.exec s2 "connect r4");
  (match Emergency.exec s2 "erase startup-config" with
  | Error (Emergency.Denied { action = "system.erase"; _ }) -> ()
  | _ -> Alcotest.fail "erase must be refused in emergency mode");
  match Emergency.exec s2 "reload" with
  | Error (Emergency.Denied { action = "system.reboot"; _ }) -> ()
  | _ -> Alcotest.fail "reload must be refused in emergency mode"

let test_emergency_audit_complete () =
  let _, _, s = open_emergency () in
  ignore (Emergency.exec s "connect r4");
  ignore (Emergency.exec s "configure interface eth0 ospf cost 42");
  ignore (Emergency.exec s "configure access-list X 10 permit ip any any");
  ignore (Emergency.exec s "gibberish");
  let audit = Emergency.audit s in
  (* open + 4 commands. *)
  checki "records" 5 (Heimdall_enforcer.Audit.length audit);
  checkb "verifies" true (Heimdall_enforcer.Audit.verify audit = Ok ());
  let verdicts =
    List.map (fun (r : Heimdall_enforcer.Audit.record) -> r.verdict)
      (Heimdall_enforcer.Audit.records audit)
  in
  checkb "records denial" true (List.mem "denied" verdicts);
  checkb "records malformed" true (List.mem "malformed" verdicts);
  checkb "records reason" true
    ((List.hd (Heimdall_enforcer.Audit.records audit)).detail
    = "core outage, twin unavailable")

let test_emergency_fixes_real_issue () =
  (* The isp issue resolved in emergency mode (no twin). *)
  let net, policies = fixture () in
  let issue = List.nth (Enterprise.issues net) 2 in
  let broken = issue.Issue.inject net in
  let privilege =
    Privilege.of_predicates
      [
        Privilege.allow ~actions:[ "show.*"; "diag.*" ] ~nodes:[ "*" ] ();
        Privilege.allow
          ~actions:(Priv_gen.repair_actions Ticket.External)
          ~nodes:[ "r1" ] ();
      ]
  in
  let s =
    Emergency.open_session ~reason:"uplink down" ~production:broken ~policies ~privilege ()
  in
  List.iter (fun cmd -> ignore (Emergency.exec s cmd)) issue.Issue.fix_commands;
  checkb "resolved" true (not (Issue.symptom_present issue (Emergency.production s)))

(* ---------------- Escalation ---------------- *)

let escalation_fixture () =
  let net, _ = fixture () in
  let ticket =
    Ticket.make ~id:"T" ~kind:Ticket.Routing ~description:"" ~endpoints:[ "h1"; "h8" ]
  in
  let slice = Heimdall_twin.Twin.slice_nodes ~production:net ~endpoints:[ "h1"; "h8" ] () in
  let current = Priv_gen.for_ticket ~network:net ~slice ticket in
  (net, ticket, slice, current)

let request ?(actions = [ "acl.rule"; "acl.bind" ]) ?(nodes = [ "r8" ]) ticket =
  {
    Escalation.technician = "tech";
    ticket;
    actions;
    nodes;
    justification = "issue is an ACL, not routing";
  }

let test_escalation_granted () =
  let net, ticket, slice, current = escalation_fixture () in
  match Escalation.decide ~network:net ~slice ~current (request ticket) with
  | Escalation.Granted pred ->
      let upgraded = Privilege.prepend pred current in
      checkb "now allowed" true
        (Privilege.allows upgraded (Privilege.request "acl.rule" "r8"));
      checkb "was not allowed" false
        (Privilege.allows current (Privilege.request "acl.rule" "r8"))
  | Escalation.Refused reason -> Alcotest.fail reason

let test_escalation_refusals () =
  let net, ticket, slice, current = escalation_fixture () in
  let decide r = Escalation.decide ~network:net ~slice ~current r in
  let refused r label =
    match decide r with
    | Escalation.Refused _ -> ()
    | Escalation.Granted _ -> Alcotest.fail ("should refuse: " ^ label)
  in
  refused (request ~actions:[ "system.erase" ] ticket) "destructive";
  refused (request ~actions:[ "secret.set" ] ticket) "credentials";
  refused (request ~actions:[ "acl.rule" ] ~nodes:[ "r9" ] ticket) "outside slice";
  refused (request ~actions:[ "acl.rule" ] ~nodes:[ "h1" ] ticket) "host target";
  refused (request ~actions:[ "frobnicate" ] ticket) "unknown action";
  refused (request ~actions:[] ticket) "no actions";
  refused (request ~actions:[ "acl.rule"; "vlan.define" ] ticket) "mixed profile";
  refused (request ~actions:[ "ospf.cost" ] ~nodes:[ "r2" ] ticket) "already allowed"

let test_escalation_applies_to_session () =
  let net, ticket, slice, current = escalation_fixture () in
  let em = Heimdall_twin.Twin.build ~production:net ~endpoints:[ "h1"; "h8" ] () in
  let session = Heimdall_twin.Twin.open_session ~privilege:current em in
  ignore (Heimdall_twin.Session.exec session "connect r8");
  checkb "denied before" true
    (Result.is_error
       (Heimdall_twin.Session.exec session
          "configure access-list SRV_PROT 15 deny icmp 10.1.20.0/24 10.3.10.0/24"));
  (match Escalation.decide ~network:net ~slice ~current (request ticket) with
  | Escalation.Granted pred -> Escalation.grant session pred
  | Escalation.Refused reason -> Alcotest.fail reason);
  checkb "allowed after" true
    (Result.is_ok
       (Heimdall_twin.Session.exec session
          "configure access-list SRV_PROT 15 deny icmp 10.1.20.0/24 10.3.10.0/24"))

(* ---------------- Loader ---------------- *)

let topology_text =
  "# a tiny lab\n\
   node ra router\n\
   node rb router\n\
   node ha host\n\
   link ra:eth0 rb:eth0\n\
   link ra:eth1 ha:eth0\n"

let config_ra =
  "hostname ra\n\
   !\n\
   interface eth0\n\
  \ ip address 10.0.0.1/30\n\
   !\n\
   interface eth1\n\
  \ ip address 10.1.0.1/24\n\
   !\n\
   router ospf\n\
  \ network 10.0.0.0/30 area 0\n\
  \ network 10.1.0.0/24 area 0\n"

let config_rb =
  "hostname rb\n\
   !\n\
   interface eth0\n\
  \ ip address 10.0.0.2/30\n\
   !\n\
   router ospf\n\
  \ network 10.0.0.0/30 area 0\n"

let config_ha = "hostname ha\nip default-gateway 10.1.0.1\n!\ninterface eth0\n ip address 10.1.0.10/24\n"

let test_loader_load () =
  match
    Loader.load ~topology:topology_text
      ~configs:[ ("ra", config_ra); ("rb", config_rb); ("ha", config_ha) ]
  with
  | Ok net ->
      checki "nodes" 3 (List.length (Network.node_names net));
      let dp = Dataplane.compute net in
      checkb "routes computed" true
        (Heimdall_verify.Trace.is_delivered
           (Heimdall_verify.Trace.trace dp (Flow.icmp (ip "10.1.0.10") (ip "10.0.0.2"))))
  | Error e -> Alcotest.fail (Loader.error_to_string e)

let test_loader_errors () =
  let check_err label topology configs =
    match Loader.load ~topology ~configs with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("expected error: " ^ label)
  in
  check_err "bad kind" "node x blimp\n" [];
  check_err "bad endpoint" "node a router\nnode b router\nlink a b\n" [];
  check_err "unknown directive" "frob x\n" [];
  check_err "missing config" topology_text [ ("ra", config_ra); ("rb", config_rb) ];
  check_err "config syntax" topology_text
    [ ("ra", "hostname ra\nbogus\n"); ("rb", config_rb); ("ha", config_ha) ];
  check_err "subnet mismatch" topology_text
    [
      ("ra", config_ra);
      ("rb", "hostname rb\n!\ninterface eth0\n ip address 192.168.0.2/30\n");
      ("ha", config_ha);
    ]

let test_loader_error_positions () =
  match Loader.load ~topology:"node a router\nlink a:e b:e\n" ~configs:[] with
  | Error e -> checki "line 2" 2 e.Loader.line
  | Ok _ -> Alcotest.fail "expected error"

let test_loader_roundtrip_via_dir () =
  let net = Enterprise.build () in
  let dir = Filename.temp_file "heimdall" "" in
  Sys.remove dir;
  Loader.save_dir dir net;
  match Loader.load_dir dir with
  | Ok loaded ->
      checkb "same rendering" true
        (List.for_all2
           (fun (n1, c1) (n2, c2) ->
             n1 = n2
             && Heimdall_config.Printer.render c1 = Heimdall_config.Printer.render c2)
           (Network.configs net) (Network.configs loaded));
      checki "same links" 22 (Heimdall_net.Topology.link_count (Network.topology loaded))
  | Error e -> Alcotest.fail (Loader.error_to_string e)

let test_emergency_disconnect_and_reconnect () =
  let _, _, s = open_emergency () in
  ignore (Emergency.exec s "connect r4");
  (match Emergency.exec s "disconnect" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Emergency.refusal_to_string e));
  (match Emergency.exec s "show ip route" with
  | Error Emergency.No_device -> ()
  | _ -> Alcotest.fail "expected No_device after disconnect");
  (match Emergency.exec s "connect mars" with
  | Error Emergency.No_device -> ()
  | _ -> Alcotest.fail "expected No_device for unknown device");
  checkb "can reconnect" true (Result.is_ok (Emergency.exec s "connect r4"))

let test_emergency_sequential_changes_compose () =
  let _, _, s = open_emergency () in
  ignore (Emergency.exec s "connect r4");
  ignore (Emergency.exec s "configure interface eth0 ospf cost 11");
  ignore (Emergency.exec s "configure interface eth1 ospf cost 12");
  checki "both applied" 2 (List.length (Emergency.applied s));
  let cfg = Network.config_exn "r4" (Emergency.production s) in
  checkb "first persisted" true
    ((Option.get (Heimdall_config.Ast.find_interface "eth0" cfg)).Heimdall_config.Ast.ospf_cost
    = Some 11);
  checkb "second persisted" true
    ((Option.get (Heimdall_config.Ast.find_interface "eth1" cfg)).Heimdall_config.Ast.ospf_cost
    = Some 12)

let test_loader_university_roundtrip () =
  let net = Heimdall_scenarios.University.build () in
  let dir = Filename.temp_file "heimdall-uni" "" in
  Sys.remove dir;
  Loader.save_dir dir net;
  match Loader.load_dir dir with
  | Ok loaded ->
      checki "92 links" 92 (Heimdall_net.Topology.link_count (Network.topology loaded));
      checki "same nodes" (List.length (Network.node_names net))
        (List.length (Network.node_names loaded))
  | Error e -> Alcotest.fail (Loader.error_to_string e)

let test_campaign_university () =
  (* A short campaign on the bigger network also keeps Heimdall clean. *)
  let net = Heimdall_scenarios.University.build () in
  let policies = Heimdall_scenarios.University.policies net in
  let issues = Heimdall_scenarios.University.issues net in
  let tallies =
    Heimdall_scenarios.Campaign.run ~seed:9 ~tickets:6 ~malicious_pct:50 net policies issues
  in
  let by m =
    List.find (fun (t : Heimdall_scenarios.Campaign.tally) -> t.model = m) tallies
  in
  let h = by Heimdall_scenarios.Campaign.Heimdall_model in
  checki "no leaks" 0 h.secrets_leaked;
  checki "no damage" 0 h.policies_damaged

let suite =
  [
    Alcotest.test_case "emergency reads production" `Quick test_emergency_reads_production;
    Alcotest.test_case "emergency disconnect/reconnect" `Quick
      test_emergency_disconnect_and_reconnect;
    Alcotest.test_case "emergency sequential changes" `Quick
      test_emergency_sequential_changes_compose;
    Alcotest.test_case "loader university roundtrip" `Quick test_loader_university_roundtrip;
    Alcotest.test_case "campaign on university" `Slow test_campaign_university;
    Alcotest.test_case "emergency applies safe change" `Quick
      test_emergency_applies_safe_change;
    Alcotest.test_case "emergency refuses policy-breaking change" `Quick
      test_emergency_refuses_policy_breaking_change;
    Alcotest.test_case "emergency denies out of spec" `Quick test_emergency_denies_out_of_spec;
    Alcotest.test_case "emergency audit complete" `Quick test_emergency_audit_complete;
    Alcotest.test_case "emergency fixes real issue" `Quick test_emergency_fixes_real_issue;
    Alcotest.test_case "escalation granted" `Quick test_escalation_granted;
    Alcotest.test_case "escalation refusals" `Quick test_escalation_refusals;
    Alcotest.test_case "escalation applies to session" `Quick
      test_escalation_applies_to_session;
    Alcotest.test_case "loader load" `Quick test_loader_load;
    Alcotest.test_case "loader errors" `Quick test_loader_errors;
    Alcotest.test_case "loader error positions" `Quick test_loader_error_positions;
    Alcotest.test_case "loader dir roundtrip" `Quick test_loader_roundtrip_via_dir;
  ]
