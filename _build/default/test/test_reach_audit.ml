(* Tests for the reachability matrix / impact analysis and for audit
   persistence. *)

open Heimdall_net
open Heimdall_config
open Heimdall_control
open Heimdall_verify
open Heimdall_enforcer
module Enterprise = Heimdall_scenarios.Enterprise

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let fixture = lazy (Heimdall_scenarios.Experiments.enterprise ())

(* ---------------- Reachability matrix ---------------- *)

let test_matrix_shape () =
  let net, _ = Lazy.force fixture in
  let m = Reachability.compute (Dataplane.compute net) in
  (* 9 hosts -> 72 ordered pairs. *)
  checki "pairs" 72 (Reachability.pair_count m);
  (* All pairs reachable except the ACL-blocked S1 -> S5 host pairs
     (2 sources x 2 servers = 4). *)
  checki "reachable" 68 (Reachability.reachable_count m);
  checkb "h1 -> h3" true (Reachability.reachable ~src:"h1" ~dst:"h3" m = Some true);
  checkb "h1 -> h8 blocked" true (Reachability.reachable ~src:"h1" ~dst:"h8" m = Some false);
  checkb "unknown host" true (Reachability.reachable ~src:"zz" ~dst:"h3" m = None)

let test_impact_none_on_identity () =
  let net, _ = Lazy.force fixture in
  let m = Reachability.compute (Dataplane.compute net) in
  let i = Reachability.diff ~before:m ~after:m in
  checkb "no change" true (i.Reachability.gained = [] && i.Reachability.lost = []);
  Alcotest.check Alcotest.string "rendering" "no reachability change"
    (Reachability.impact_to_string i)

let test_impact_detects_loss_and_gain () =
  let net, _ = Lazy.force fixture in
  (* Losing r7's uplink cuts h7 off (backup r6-r7 link is not in the IGP). *)
  let loss_changes =
    [ Change.v "r7" (Change.Set_interface_enabled { iface = "eth0"; enabled = false }) ]
  in
  (match Reachability.impact_of_changes ~production:net loss_changes with
  | Ok i ->
      checkb "lost pairs" true (List.length i.Reachability.lost > 0);
      checkb "h7 affected" true
        (List.exists (fun (a, b) -> a = "h7" || b = "h7") i.Reachability.lost);
      checkb "nothing gained" true (i.Reachability.gained = [])
  | Error m -> Alcotest.fail m);
  (* Permitting the blocked office pair adds reachability. *)
  let gain_changes =
    [
      Change.v "r8"
        (Change.Acl_set_rule
           {
             acl = "SRV_PROT";
             rule =
               Acl.rule ~seq:5 Acl.Permit (Prefix.of_string "10.1.10.0/24")
                 (Prefix.of_string "10.3.10.0/24");
           });
    ]
  in
  match Reachability.impact_of_changes ~production:net gain_changes with
  | Ok i ->
      checki "four pairs gained" 4 (List.length i.Reachability.gained);
      checkb "nothing lost" true (i.Reachability.lost = [])
  | Error m -> Alcotest.fail m

let test_enforcer_reports_impact () =
  let net, policies = Lazy.force fixture in
  let issue = List.nth (Enterprise.issues net) 1 (* ospf *) in
  let run = Heimdall_msp.Workflow.run_heimdall ~production:net ~policies ~issue () in
  match run.Heimdall_msp.Workflow.outcome with
  | Some o ->
      checkb "approved" true o.Enforcer.approved;
      (match o.Enforcer.impact with
      | Some i ->
          (* The fix restores h7's connectivity. *)
          checkb "gained pairs" true (List.length i.Reachability.gained > 0);
          checkb "nothing lost" true (i.Reachability.lost = [])
      | None -> Alcotest.fail "no impact on approved outcome")
  | None -> Alcotest.fail "no outcome"

(* ---------------- Audit persistence ---------------- *)

let sample_audit () =
  let rec go audit i =
    if i > 8 then audit
    else
      go
        (Audit.append ~actor:"tech" ~action:"acl.rule" ~resource:"r8"
           ~detail:(Printf.sprintf "edit %d with \"quotes\" and\nnewline" i)
           ~verdict:"allowed" audit)
        (i + 1)
  in
  go Audit.empty 1

let test_audit_export_import () =
  let audit = sample_audit () in
  let text = Audit.export audit in
  match Audit.import text with
  | Ok imported ->
      checki "length" (Audit.length audit) (Audit.length imported);
      Alcotest.check Alcotest.string "head preserved" (Audit.head audit)
        (Audit.head imported);
      checkb "records equal" true (Audit.records audit = Audit.records imported)
  | Error m -> Alcotest.fail m

let test_audit_import_rejects_tampering () =
  let audit = sample_audit () in
  let text = Audit.export audit in
  let lines = String.split_on_char '\n' text in
  (* Drop a middle record. *)
  let dropped = List.filteri (fun i _ -> i <> 3) lines |> String.concat "\n" in
  checkb "dropped record rejected" true (Result.is_error (Audit.import dropped));
  (* Reorder two records. *)
  let reordered =
    match lines with
    | a :: b :: rest -> String.concat "\n" (b :: a :: rest)
    | _ -> assert false
  in
  checkb "reordered rejected" true (Result.is_error (Audit.import reordered));
  (* Edit a field in place. *)
  let edited =
    String.concat "\n"
      (List.map
         (fun l ->
           if String.length l > 0 && String.contains l '3' then
             String.concat "denied" (String.split_on_char 'a' l)
           else l)
         lines)
  in
  checkb "edited rejected or unparseable" true (Result.is_error (Audit.import edited));
  checkb "garbage rejected" true (Result.is_error (Audit.import "not json\n"))

let test_audit_import_empty () =
  match Audit.import "" with
  | Ok t -> checki "empty trail" 0 (Audit.length t)
  | Error m -> Alcotest.fail m

let test_audit_export_through_enforcer () =
  (* A real enforcer-produced trail round-trips. *)
  let net, policies = Lazy.force fixture in
  let issue = List.hd (Enterprise.issues net) in
  let run = Heimdall_msp.Workflow.run_heimdall ~production:net ~policies ~issue () in
  match run.Heimdall_msp.Workflow.outcome with
  | Some o -> (
      match Audit.import (Audit.export o.Enforcer.audit) with
      | Ok imported ->
          Alcotest.check Alcotest.string "head" (Audit.head o.Enforcer.audit)
            (Audit.head imported)
      | Error m -> Alcotest.fail m)
  | None -> Alcotest.fail "no outcome"

let suite =
  [
    Alcotest.test_case "matrix shape" `Quick test_matrix_shape;
    Alcotest.test_case "impact identity" `Quick test_impact_none_on_identity;
    Alcotest.test_case "impact loss and gain" `Quick test_impact_detects_loss_and_gain;
    Alcotest.test_case "enforcer reports impact" `Quick test_enforcer_reports_impact;
    Alcotest.test_case "audit export/import" `Quick test_audit_export_import;
    Alcotest.test_case "audit import rejects tampering" `Quick
      test_audit_import_rejects_tampering;
    Alcotest.test_case "audit import empty" `Quick test_audit_import_empty;
    Alcotest.test_case "audit roundtrip via enforcer" `Quick
      test_audit_export_through_enforcer;
  ]
