(* Tests for the SDN substrate: flow rules, fabric forwarding, the
   controller's intent compiler, and the SDN twin session. *)

open Heimdall_net
open Heimdall_sdn
open Heimdall_privilege

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let ip = Ipv4.of_string
let pfx = Prefix.of_string

(* A leaf-spine fabric:

     ha -- s1      s2 -- hb
            \     /
             spine
            /     \
     hc -- s3      (s1,s2,s3 all connect to spine)        *)
let topo () =
  let open Topology in
  empty
  |> add_node "s1" Switch |> add_node "s2" Switch |> add_node "s3" Switch
  |> add_node "spine" Switch
  |> add_node "ha" Host |> add_node "hb" Host |> add_node "hc" Host
  |> add_link { node = "s1"; iface = "p1" } { node = "spine"; iface = "p1" }
  |> add_link { node = "s2"; iface = "p1" } { node = "spine"; iface = "p2" }
  |> add_link { node = "s3"; iface = "p1" } { node = "spine"; iface = "p3" }
  |> add_link { node = "ha"; iface = "eth0" } { node = "s1"; iface = "p2" }
  |> add_link { node = "hb"; iface = "eth0" } { node = "s2"; iface = "p2" }
  |> add_link { node = "hc"; iface = "eth0" } { node = "s3"; iface = "p2" }

let hosts = [ ("ha", ip "10.0.0.1"); ("hb", ip "10.0.0.2"); ("hc", ip "10.0.0.3") ]
let fabric () = Fabric.make (topo ()) ~hosts

let intents =
  [
    Controller.Connect { src = "ha"; dst = "hb" };
    Controller.Connect { src = "ha"; dst = "hc" };
    Controller.Connect { src = "hb"; dst = "hc" };
    Controller.Block { src = "hc"; dst = "ha"; proto = Acl.Proto Flow.Tcp };
  ]

let compiled () = Controller.compile (fabric ()) intents

(* ---------------- Rules ---------------- *)

let test_rule_matching () =
  let r =
    Rule.make ~priority:10
      (Rule.matcher ~in_port:"p2" ~src:(pfx "10.0.0.1/32") ())
      (Rule.Forward "p1")
  in
  let flow = Flow.icmp (ip "10.0.0.1") (ip "10.0.0.2") in
  checkb "matches" true (Rule.matches r ~in_port:"p2" flow);
  checkb "wrong port" false (Rule.matches r ~in_port:"p9" flow);
  checkb "wrong src" false
    (Rule.matches r ~in_port:"p2" (Flow.icmp (ip "10.0.0.9") (ip "10.0.0.2")));
  let proto_rule =
    Rule.make ~priority:5 (Rule.matcher ~proto:(Acl.Proto Flow.Tcp) ()) Rule.Drop
  in
  checkb "proto match" true
    (Rule.matches proto_rule ~in_port:"x" (Flow.tcp ~dst_port:80 (ip "1.1.1.1") (ip "2.2.2.2")));
  checkb "proto mismatch" false (Rule.matches proto_rule ~in_port:"x" flow)

(* ---------------- Fabric ---------------- *)

let test_empty_tables_drop () =
  let f = fabric () in
  checkb "fail closed" false (Fabric.reachable f ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2"));
  match Fabric.trace f (Flow.icmp (ip "10.0.0.1") (ip "10.0.0.2")) with
  | Fabric.Dropped (Fabric.Table_miss "s1", path) ->
      checkb "path starts at host" true (List.hd path = "ha")
  | _ -> Alcotest.fail "expected table miss at s1"

let test_priority_order () =
  let f = fabric () in
  let low = Rule.make ~priority:1 Rule.any (Rule.Forward "p1") in
  let high = Rule.make ~priority:50 Rule.any Rule.Drop in
  let f = Fabric.install "s1" low f in
  let f = Fabric.install "s1" high f in
  (match Fabric.trace f (Flow.icmp (ip "10.0.0.1") (ip "10.0.0.2")) with
  | Fabric.Dropped (Fabric.Rule_drop ("s1", r), _) ->
      checki "high priority won" 50 r.Rule.priority
  | _ -> Alcotest.fail "expected drop by high-priority rule");
  (* Removing the high rule exposes the low one. *)
  let f = Fabric.uninstall "s1" high f in
  match Fabric.trace f (Flow.icmp (ip "10.0.0.1") (ip "10.0.0.2")) with
  | Fabric.Dropped (Fabric.Table_miss "spine", _) -> ()
  | other ->
      Alcotest.fail
        (match other with
        | Fabric.Dropped (r, _) -> Fabric.drop_reason_to_string r
        | Fabric.Delivered _ -> "delivered")

let test_forward_to_unwired_port () =
  let f = Fabric.install "s1" (Rule.make ~priority:1 Rule.any (Rule.Forward "p99")) (fabric ()) in
  match Fabric.trace f (Flow.icmp (ip "10.0.0.1") (ip "10.0.0.2")) with
  | Fabric.Dropped (Fabric.No_port ("s1", "p99"), _) -> ()
  | _ -> Alcotest.fail "expected no-port drop"

let test_loop_detected () =
  (* s1 and spine bounce the packet forever. *)
  let f =
    fabric ()
    |> Fabric.install "s1" (Rule.make ~priority:1 Rule.any (Rule.Forward "p1"))
    |> Fabric.install "spine" (Rule.make ~priority:1 Rule.any (Rule.Forward "p1"))
  in
  match Fabric.trace f (Flow.icmp (ip "10.0.0.1") (ip "10.0.0.2")) with
  | Fabric.Dropped (Fabric.Loop, _) -> ()
  | _ -> Alcotest.fail "expected loop"

let test_unknown_host () =
  match Fabric.trace (fabric ()) (Flow.icmp (ip "9.9.9.9") (ip "10.0.0.2")) with
  | Fabric.Dropped (Fabric.Unknown_host _, _) -> ()
  | _ -> Alcotest.fail "expected unknown host"

(* ---------------- Controller ---------------- *)

let test_controller_realises_intents () =
  let f = compiled () in
  checkb "all intents hold" true (Controller.violations f intents = []);
  checkb "ha->hb" true (Fabric.reachable f ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2"));
  (* The block is protocol-specific: ICMP passes, TCP does not. *)
  checkb "hc->ha icmp" true (Fabric.reachable f ~src:(ip "10.0.0.3") ~dst:(ip "10.0.0.1"));
  (match Fabric.trace f (Flow.tcp ~dst_port:22 (ip "10.0.0.3") (ip "10.0.0.1")) with
  | Fabric.Dropped (Fabric.Rule_drop ("s3", _), _) -> ()
  | _ -> Alcotest.fail "expected TCP block at ingress");
  (* Non-intended pairs are not opened up beyond the compiled paths:
     every compiled rule is host-specific, so a host without intents
     cannot reach anything extra — all three pairs are intended here, so
     instead check rule provenance. *)
  checkb "rules tagged controller" true
    (List.for_all
       (fun sw ->
         List.for_all (fun (r : Rule.t) -> r.cookie = "controller") (Fabric.table sw f))
       (Fabric.switches f))

let test_controller_paths_traverse_spine () =
  let f = compiled () in
  match Fabric.trace f (Flow.icmp (ip "10.0.0.1") (ip "10.0.0.3")) with
  | Fabric.Delivered path ->
      checkb "via spine" true (List.mem "spine" path);
      checkb "ends at hc" true (List.nth path (List.length path - 1) = "hc")
  | Fabric.Dropped (r, _) -> Alcotest.fail (Fabric.drop_reason_to_string r)

let test_controller_recompile_idempotent () =
  let f1 = compiled () in
  let f2 = Controller.compile f1 intents in
  checki "same rule count" (Fabric.rule_count f1) (Fabric.rule_count f2);
  checkb "still holds" true (Controller.violations f2 intents = [])

(* ---------------- SDN twin session ---------------- *)

let test_sdn_session_monitored () =
  let baseline = compiled () in
  let privilege = Privilege.of_predicates (Twin_sdn.allow_sdn ~switches:[ "s2" ] ()) in
  let session = Twin_sdn.open_session ~privilege baseline in
  (* Reads and traces anywhere. *)
  checkb "show s1" true (Result.is_ok (Twin_sdn.show_table session "s1"));
  checkb "trace" true
    (Result.is_ok (Twin_sdn.trace session (Flow.icmp (ip "10.0.0.1") (ip "10.0.0.2"))));
  (* Writes only on s2. *)
  let rule = Rule.make ~cookie:"tech" ~priority:150 Rule.any Rule.Drop in
  checkb "install s1 denied" true (Result.is_error (Twin_sdn.install session "s1" rule));
  checkb "install s2 allowed" true (Result.is_ok (Twin_sdn.install session "s2" rule));
  (* Audit captured all of it and verifies. *)
  let audit = Twin_sdn.audit session in
  checkb "audit verifies" true (Heimdall_enforcer.Audit.verify audit = Ok ());
  checkb "denial recorded" true
    (List.exists
       (fun (r : Heimdall_enforcer.Audit.record) -> r.verdict = "denied")
       (Heimdall_enforcer.Audit.records audit))

let test_sdn_verify_rejects_broken_intents () =
  let baseline = compiled () in
  let privilege = Privilege.of_predicates (Twin_sdn.allow_sdn ()) in
  let session = Twin_sdn.open_session ~privilege baseline in
  (* A rogue drop-everything rule on s2 kills hb's connectivity. *)
  (match Twin_sdn.install session "s2" (Rule.make ~cookie:"tech" ~priority:999 Rule.any Rule.Drop) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let outcome = Twin_sdn.verify session ~baseline ~intents in
  checkb "rejected" false outcome.Twin_sdn.approved;
  checkb "violations named" true (outcome.Twin_sdn.violated <> []);
  checkb "no update" true (outcome.Twin_sdn.updated = None)

let test_sdn_verify_accepts_benign () =
  let baseline = compiled () in
  let privilege = Privilege.of_predicates (Twin_sdn.allow_sdn ()) in
  let session = Twin_sdn.open_session ~privilege baseline in
  (* Add a harmless high-priority block of unknown traffic. *)
  (match
     Twin_sdn.install session "s1"
       (Rule.make ~cookie:"tech" ~priority:300
          (Rule.matcher ~src:(pfx "192.168.0.0/16") ())
          Rule.Drop)
   with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let outcome = Twin_sdn.verify session ~baseline ~intents in
  checkb "approved" true outcome.Twin_sdn.approved;
  checkb "updated fabric" true (outcome.Twin_sdn.updated <> None)

let test_sdn_twin_isolated () =
  let baseline = compiled () in
  let privilege = Privilege.of_predicates (Twin_sdn.allow_sdn ()) in
  let session = Twin_sdn.open_session ~privilege baseline in
  ignore (Twin_sdn.install session "s1" (Rule.make ~priority:999 Rule.any Rule.Drop));
  (* The baseline fabric object is untouched. *)
  checkb "baseline intact" true (Controller.violations baseline intents = [])

(* qcheck: the controller realises arbitrary Connect intents on random
   line topologies (hosts at both ends of a switch chain). *)
let prop_controller_on_chains =
  QCheck.Test.make ~count:50 ~name:"controller realises connect on switch chains"
    (QCheck.int_range 1 6) (fun n ->
      let open Topology in
      let topo = ref (empty |> add_node "hx" Host |> add_node "hy" Host) in
      for i = 1 to n do
        topo := add_node (Printf.sprintf "s%d" i) Switch !topo
      done;
      topo := add_link { node = "hx"; iface = "eth0" } { node = "s1"; iface = "h" } !topo;
      topo :=
        add_link { node = "hy"; iface = "eth0" }
          { node = Printf.sprintf "s%d" n; iface = "h2" }
          !topo;
      for i = 1 to n - 1 do
        topo :=
          add_link
            { node = Printf.sprintf "s%d" i; iface = "r" }
            { node = Printf.sprintf "s%d" (i + 1); iface = "l" }
            !topo
      done;
      let f =
        Fabric.make !topo ~hosts:[ ("hx", ip "10.9.0.1"); ("hy", ip "10.9.0.2") ]
      in
      let intents = [ Controller.Connect { src = "hx"; dst = "hy" } ] in
      let compiled = Controller.compile f intents in
      Controller.violations compiled intents = []
      (* And an empty fabric never satisfies it. *)
      && not (Controller.holds f (List.hd intents)))

(* qcheck: fabric tracing is total and bounded on random rule soups. *)
let prop_fabric_total =
  QCheck.Test.make ~count:100 ~name:"fabric trace total on random rules"
    (QCheck.small_list
       (QCheck.triple (QCheck.int_bound 3) (QCheck.int_bound 300) (QCheck.int_bound 3)))
    (fun specs ->
      let f =
        List.fold_left
          (fun f (sw_i, prio, act_i) ->
            let sw = List.nth [ "s1"; "s2"; "s3"; "spine" ] sw_i in
            let action =
              match act_i with
              | 0 -> Rule.Forward "p1"
              | 1 -> Rule.Forward "p2"
              | 2 -> Rule.Drop
              | _ -> Rule.To_controller
            in
            Fabric.install sw (Rule.make ~priority:prio Rule.any action) f)
          (fabric ()) specs
      in
      match Fabric.trace f (Flow.icmp (ip "10.0.0.1") (ip "10.0.0.2")) with
      | Fabric.Delivered path -> List.length path <= 66
      | Fabric.Dropped (_, path) -> List.length path <= 66)

let suite =
  [
    Alcotest.test_case "rule matching" `Quick test_rule_matching;
    Alcotest.test_case "empty tables fail closed" `Quick test_empty_tables_drop;
    Alcotest.test_case "priority order" `Quick test_priority_order;
    Alcotest.test_case "forward to unwired port" `Quick test_forward_to_unwired_port;
    Alcotest.test_case "loop detected" `Quick test_loop_detected;
    Alcotest.test_case "unknown host" `Quick test_unknown_host;
    Alcotest.test_case "controller realises intents" `Quick test_controller_realises_intents;
    Alcotest.test_case "controller paths traverse spine" `Quick
      test_controller_paths_traverse_spine;
    Alcotest.test_case "controller recompile idempotent" `Quick
      test_controller_recompile_idempotent;
    Alcotest.test_case "sdn session monitored" `Quick test_sdn_session_monitored;
    Alcotest.test_case "sdn verify rejects broken intents" `Quick
      test_sdn_verify_rejects_broken_intents;
    Alcotest.test_case "sdn verify accepts benign" `Quick test_sdn_verify_accepts_benign;
    Alcotest.test_case "sdn twin isolated" `Quick test_sdn_twin_isolated;
    QCheck_alcotest.to_alcotest prop_controller_on_chains;
    QCheck_alcotest.to_alcotest prop_fabric_total;
  ]
