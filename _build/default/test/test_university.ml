(* Deep-dive integration tests on the university network: multi-area
   OSPF behaviour, redundancy under failures, the datacentre firewall,
   and the dark-fibre backup links. *)

open Heimdall_net
open Heimdall_config
open Heimdall_control
open Heimdall_verify

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let ip = Ipv4.of_string

let fixture = lazy (Heimdall_scenarios.Experiments.university ())

let trace net flow = Trace.trace (Dataplane.compute net) flow

(* ---------------- Multi-area OSPF ---------------- *)

let test_three_areas_plus_backbone () =
  let net, _ = Lazy.force fixture in
  let areas =
    Ospf.enabled_interfaces net
    |> List.map (fun (i : Ospf.iface) -> i.area)
    |> List.sort_uniq Int.compare
  in
  checkb "areas 0..3" true (areas = [ 0; 1; 2; 3 ])

let test_abrs () =
  let net, _ = Lazy.force fixture in
  let areas_of r =
    Ospf.enabled_interfaces net
    |> List.filter_map (fun (i : Ospf.iface) -> if i.router = r then Some i.area else None)
    |> List.sort_uniq Int.compare
  in
  checkb "dist1 is ABR 0/1" true (areas_of "dist1" = [ 0; 1 ]);
  checkb "dist2 is ABR 0/2" true (areas_of "dist2" = [ 0; 2 ]);
  checkb "dist3 is ABR 0/3" true (areas_of "dist3" = [ 0; 3 ]);
  checkb "core1 backbone only" true (areas_of "core1" = [ 0 ]);
  checkb "acc1 area 1 only" true (areas_of "acc1" = [ 1 ])

let test_interarea_reachability () =
  let net, _ = Lazy.force fixture in
  (* Area 1 (cs1) to area 3 (dorm1) crosses the backbone through two ABRs. *)
  let result = trace net (Flow.icmp (ip "10.11.10.11") (ip "10.15.50.11")) in
  checkb "delivered" true (Trace.is_delivered result);
  let nodes = Trace.nodes_on_path result in
  checkb "through dist1" true (List.mem "dist1" nodes);
  checkb "through dist3" true (List.mem "dist3" nodes)
(* The backbone hop is the direct dist1-dist3 area-0 link, so the cores
   are not necessarily on this path. *)

let test_dark_fibre_not_used () =
  let net, _ = Lazy.force fixture in
  (* acc2-acc3 and acc4-acc5 exist physically but run no IGP: no
     forwarding path may use them. *)
  let result = trace net (Flow.icmp (ip "10.12.20.11") (ip "10.13.30.11")) in
  checkb "delivered" true (Trace.is_delivered result);
  let hops = Trace.hops result in
  (* If the dark fibre were used, acc2 would forward straight to acc3;
     instead the path must include a dist router. *)
  checkb "not direct" true
    (List.exists (fun (h : Trace.hop) -> h.node = "dist1" || h.node = "dist2") hops)

(* ---------------- Redundancy ---------------- *)

let test_survives_single_uplink_failure () =
  let net, policies = Lazy.force fixture in
  (* Kill one member of acc1's dual uplink to dist1: everything keeps
     working because the second member carries the load. *)
  let uplinks =
    List.filter_map
      (fun (l : Topology.link) ->
        if l.a.node = "acc1" && l.b.node = "dist1" then Some l.a.iface
        else if l.b.node = "acc1" && l.a.node = "dist1" then Some l.b.iface
        else None)
      (Topology.links (Network.topology net))
  in
  checki "dual uplink" 2 (List.length uplinks);
  let broken =
    Result.get_ok
      (Network.apply_changes
         [
           Change.v "acc1"
             (Change.Set_interface_enabled { iface = List.hd uplinks; enabled = false });
         ]
         net)
  in
  let report = Policy.check_all (Dataplane.compute broken) policies in
  checki "no policy broken" 0 (List.length report.violations)

let test_survives_core_failure () =
  let net, policies = Lazy.force fixture in
  (* Lose core1 entirely (all its interfaces): core2 carries the campus. *)
  let core1_ifaces =
    (Network.config_exn "core1" net).interfaces
    |> List.map (fun (i : Ast.interface) ->
           Change.v "core1"
             (Change.Set_interface_enabled { iface = i.if_name; enabled = false }))
  in
  let broken = Result.get_ok (Network.apply_changes core1_ifaces net) in
  let report = Policy.check_all (Dataplane.compute broken) policies in
  checki "no policy broken" 0 (List.length report.violations)

let test_dist_failure_partitions_area () =
  let net, policies = Lazy.force fixture in
  (* dist1 is area 1's only ABR: losing it cuts CS/EE off (their only
     other physical path is the dark fibre, which runs no IGP). *)
  let dist1_ifaces =
    (Network.config_exn "dist1" net).interfaces
    |> List.map (fun (i : Ast.interface) ->
           Change.v "dist1"
             (Change.Set_interface_enabled { iface = i.if_name; enabled = false }))
  in
  let broken = Result.get_ok (Network.apply_changes dist1_ifaces net) in
  let report = Policy.check_all (Dataplane.compute broken) policies in
  checkb "many policies broken" true (List.length report.violations > 20)

(* ---------------- The datacentre firewall ---------------- *)

let test_fw_guards_dc () =
  let net, _ = Lazy.force fixture in
  (* Dorm ICMP to the servers is denied at fw1 (rules 10/20). *)
  (match trace net (Flow.icmp (ip "10.15.50.11") (ip "10.16.60.11")) with
  | Trace.Dropped (Trace.Acl_denied { node = "fw1"; acl = "DC_PROT"; _ }, _) -> ()
  | Trace.Dropped (r, _) -> Alcotest.fail (Trace.drop_reason_to_string r)
  | Trace.Delivered _ -> Alcotest.fail "dorm reached the DC");
  (* Dorm SMTP to anywhere in the DC is denied (rule 30). *)
  (match trace net (Flow.tcp ~dst_port:25 (ip "10.15.50.11") (ip "10.16.60.12")) with
  | Trace.Dropped (Trace.Acl_denied { rule_seq = Some 30; _ }, _) -> ()
  | _ -> Alcotest.fail "dorm SMTP not blocked");
  (* Dorm web to the DC is fine. *)
  checkb "dorm web ok" true
    (Trace.is_delivered (trace net (Flow.tcp ~dst_port:80 (ip "10.15.50.11") (ip "10.16.60.11"))));
  (* CS ICMP to the DC is fine and crosses fw1. *)
  let cs = trace net (Flow.icmp (ip "10.11.10.11") (ip "10.16.60.11")) in
  checkb "cs delivered" true (Trace.is_delivered cs);
  checkb "via fw1" true (List.mem "fw1" (Trace.nodes_on_path cs))

let test_waypoint_policies_mined () =
  let _, policies = Lazy.force fixture in
  let waypoints =
    List.filter
      (fun (p : Policy.t) ->
        match p.intent with Policy.Waypoint "fw1" -> true | _ -> false)
      policies
  in
  checkb "waypoint policies exist" true (List.length waypoints > 0);
  let isolated =
    List.filter (fun (p : Policy.t) -> p.intent = Policy.Isolated) policies
  in
  (* Two dorm subnets x two DC subnets (ICMP) + dorm SMTP sources. *)
  checkb "isolated policies exist" true (List.length isolated >= 4)

(* ---------------- Department L2 ---------------- *)

let test_same_vlan_two_switches () =
  let net, _ = Lazy.force fixture in
  (* cs1 (sw1a) and cs2 (sw1b) share vlan 10 across the inter-switch
     trunk: pure L2 delivery, no router hop. *)
  let result = trace net (Flow.icmp (ip "10.11.10.11") (ip "10.11.10.12")) in
  checkb "delivered" true (Trace.is_delivered result);
  let l3_hops = Trace.hops result in
  checki "two l3 hops (src, dst)" 2 (List.length l3_hops);
  let nodes = Trace.nodes_on_path result in
  checkb "bridged by dept switches" true
    (List.mem "sw1a" nodes && List.mem "sw1b" nodes)

let test_inter_vlan_same_dept () =
  let net, _ = Lazy.force fixture in
  (* cs1 (vlan 10) to cs3 (vlan 11): must route through acc1's SVIs. *)
  let result = trace net (Flow.icmp (ip "10.11.10.11") (ip "10.11.11.11")) in
  checkb "delivered" true (Trace.is_delivered result);
  checkb "routed via acc1" true (List.mem "acc1" (Trace.nodes_on_path result))

let suite =
  [
    Alcotest.test_case "three areas plus backbone" `Quick test_three_areas_plus_backbone;
    Alcotest.test_case "abrs" `Quick test_abrs;
    Alcotest.test_case "inter-area reachability" `Quick test_interarea_reachability;
    Alcotest.test_case "dark fibre not used" `Quick test_dark_fibre_not_used;
    Alcotest.test_case "survives single uplink failure" `Quick
      test_survives_single_uplink_failure;
    Alcotest.test_case "survives core failure" `Quick test_survives_core_failure;
    Alcotest.test_case "dist failure partitions its area" `Quick
      test_dist_failure_partitions_area;
    Alcotest.test_case "firewall guards the DC" `Quick test_fw_guards_dc;
    Alcotest.test_case "waypoint policies mined" `Quick test_waypoint_policies_mined;
    Alcotest.test_case "same vlan across two switches" `Quick test_same_vlan_two_switches;
    Alcotest.test_case "inter-vlan same department" `Quick test_inter_vlan_same_dept;
  ]
