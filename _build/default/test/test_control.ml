(* Tests for the control-plane layer: network container, L2 domains,
   OSPF, BGP, RIB selection and dataplane computation.  Fixtures are
   built with the scenarios Builder. *)

open Heimdall_net
open Heimdall_config
open Heimdall_control
module B = Heimdall_scenarios.Builder

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let ia = Ifaddr.of_string
let ip = Ipv4.of_string
let pfx = Prefix.of_string

(* A triangle of routers with a host on each side and a VLAN'd switch:

     h1 -- r1 ---- r2 -- h2
             \    /
              r3          (r1-r3 cost 1, r2-r3 cost 1, r1-r2 cost 10)
              |
     h3 -- sw1 (vlan 10, SVI on r3)
*)
let triangle () =
  let b = B.create () in
  List.iter (B.router b) [ "r1"; "r2"; "r3" ];
  B.switch b "sw1";
  ignore (B.p2p ~area:0 ~cost:10 b "r1" "r2");
  ignore (B.p2p ~area:0 ~cost:1 b "r1" "r3");
  ignore (B.p2p ~area:0 ~cost:1 b "r2" "r3");
  B.routed_host ~area:0 b ~host_name:"h1" ~dev:"r1" ~subnet:(pfx "10.1.0.0/24") ~host_octet:10;
  B.routed_host ~area:0 b ~host_name:"h2" ~dev:"r2" ~subnet:(pfx "10.2.0.0/24") ~host_octet:10;
  B.svi ~area:0 b "r3" 10 (ia "10.3.0.1/24");
  B.trunk_link b "sw1" "r3" ~vlans:[ 10 ];
  B.attach_host b ~host_name:"h3" ~dev:"sw1" ~vlan:10 ~addr:(ia "10.3.0.10/24")
    ~gateway:(ip "10.3.0.1");
  B.build b

(* ---------------- Network ---------------- *)

let test_network_accessors () =
  let net = triangle () in
  checkb "config" true (Network.config "r1" net <> None);
  checkb "unknown" true (Network.config "zz" net = None);
  checkb "kind" true (Network.kind "sw1" net = Some Topology.Switch);
  checkb "validate" true (Network.validate net = Ok ());
  checkb "owner" true (Network.owner_of_address (ip "10.1.0.10") net = Some ("h1", "eth0"));
  checkb "subnet" true (Network.subnet_of_address (ip "10.2.0.200") net = Some (pfx "10.2.0.0/24"))

let test_network_restrict () =
  let net = triangle () in
  let small = Network.restrict [ "r1"; "r3"; "h1" ] net in
  checki "nodes" 3 (List.length (Network.node_names small));
  (* Only links with both ends kept survive. *)
  checki "links" 2 (Topology.link_count (Network.topology small));
  checkb "config kept" true (Network.config "r1" small <> None)

let test_network_validate_catches_subnet_mismatch () =
  let net = triangle () in
  let bad =
    Result.get_ok
      (Network.apply_changes
         [
           Change.v "r1"
             (Change.Set_interface_addr { iface = "eth0"; addr = Some (ia "192.168.9.1/24") });
         ]
         net)
  in
  checkb "caught" true (Result.is_error (Network.validate bad))

let test_network_hostname_consistency () =
  let topo =
    Topology.empty |> Topology.add_node "a" Topology.Router
  in
  Alcotest.check_raises "hostname mismatch"
    (Invalid_argument "Network.make: node a has hostname b") (fun () ->
      ignore (Network.make topo [ ("a", Ast.make "b") ]))

(* ---------------- L2 ---------------- *)

let test_l2_direct_link () =
  let net = triangle () in
  let l2 = L2.compute net in
  checkb "p2p same domain" true
    (L2.same_domain { node = "r1"; iface = "eth0" } { node = "r2"; iface = "eth0" } l2);
  checkb "different links differ" false
    (L2.same_domain { node = "r1"; iface = "eth0" } { node = "r2"; iface = "eth1" } l2)

let test_l2_vlan_through_switch () =
  let net = triangle () in
  let l2 = L2.compute net in
  (* h3's port joins vlan 10 on sw1, trunked to r3 whose SVI lives there. *)
  checkb "host to svi" true
    (L2.same_domain { node = "h3"; iface = "eth0" } { node = "r3"; iface = "vlan10" } l2);
  checkb "switch listed" true
    (match L2.domain_of { node = "h3"; iface = "eth0" } l2 with
    | Some d -> List.mem "sw1" (L2.domain_switches d l2)
    | None -> false)

let test_l2_wrong_vlan_breaks_domain () =
  let net = triangle () in
  let port =
    (* h3's access port on sw1: first switchport-access interface. *)
    match
      List.find_opt
        (fun (i : Ast.interface) -> i.switchport = Some (Ast.Access 10))
        (Network.config_exn "sw1" net).interfaces
    with
    | Some i -> i.if_name
    | None -> Alcotest.fail "no access port"
  in
  let broken =
    Result.get_ok
      (Network.apply_changes
         [ Change.v "sw1" (Change.Set_switchport { iface = port; switchport = Some (Ast.Access 99) }) ]
         net)
  in
  let l2 = L2.compute broken in
  checkb "domain broken" false
    (L2.same_domain { node = "h3"; iface = "eth0" } { node = "r3"; iface = "vlan10" } l2)

let test_l2_shutdown_detaches () =
  let net = triangle () in
  let broken =
    Result.get_ok
      (Network.apply_changes
         [ Change.v "r1" (Change.Set_interface_enabled { iface = "eth0"; enabled = false }) ]
         net)
  in
  let l2 = L2.compute broken in
  checkb "detached" false
    (L2.same_domain { node = "r1"; iface = "eth0" } { node = "r2"; iface = "eth0" } l2)

let test_l2_access_trunk_mismatch () =
  (* A trunk that no longer allows a VLAN stops bridging it. *)
  let net = triangle () in
  let broken =
    (* Narrow the trunk on sw1's uplink to vlan 20 only: vlan 10 frames
       no longer cross. *)
    let uplink =
      List.find_map
        (fun (i : Ast.interface) ->
          match i.switchport with Some (Ast.Trunk _) -> Some i.if_name | _ -> None)
        (Network.config_exn "sw1" net).interfaces
      |> Option.get
    in
    Result.get_ok
      (Network.apply_changes
         [
           Change.v "sw1"
             (Change.Set_switchport { iface = uplink; switchport = Some (Ast.Trunk [ 20 ]) });
         ]
         net)
  in
  let l2 = L2.compute broken in
  checkb "vlan filtered off trunk" false
    (L2.same_domain { node = "h3"; iface = "eth0" } { node = "r3"; iface = "vlan10" } l2)

(* ---------------- OSPF ---------------- *)

let test_ospf_enabled_interfaces () =
  let net = triangle () in
  let ifaces = Ospf.enabled_interfaces net in
  (* r1: 3 (two transit + host subnet), r2: 3, r3: 3 (two transit + SVI). *)
  checki "count" 9 (List.length ifaces);
  checkb "svi included" true
    (List.exists (fun (i : Ospf.iface) -> i.router = "r3" && i.iface = "vlan10") ifaces)

let test_ospf_adjacency () =
  let net = triangle () in
  let adjs = Ospf.adjacencies net (L2.compute net) in
  checki "three adjacencies" 3 (List.length adjs)

let test_ospf_prefers_low_cost () =
  let net = triangle () in
  let dp = Dataplane.compute net in
  (* r1 -> h2's subnet: direct r1-r2 costs 10+..., via r3 costs 1+1. *)
  match Fib.lookup (ip "10.2.0.10") (Dataplane.fib "r1" dp) with
  | Some route ->
      checkb "via r3" true
        (route.Fib.next_hop <> None
        &&
        let nh = Option.get route.Fib.next_hop in
        (* r3's address on the r1-r3 link. *)
        Prefix.contains (pfx "10.200.0.4/30") nh)
  | None -> Alcotest.fail "no route"

let test_ospf_area_mismatch_kills_adjacency () =
  let net = triangle () in
  let broken =
    Result.get_ok
      (Network.apply_changes
         [ Change.v "r1" (Change.Set_ospf_area { iface = "eth0"; area = Some 5 }) ]
         net)
  in
  let adjs = Ospf.adjacencies broken (L2.compute broken) in
  checki "one adjacency lost" 2 (List.length adjs)

let test_ospf_default_originate () =
  let b = B.create () in
  List.iter (B.router b) [ "e"; "c" ];
  ignore (B.p2p ~area:0 b "e" "c");
  B.routed_host ~area:0 b ~host_name:"hh" ~dev:"c" ~subnet:(pfx "10.8.0.0/24") ~host_octet:10;
  ignore (B.unwired_l3 b "e" (ia "203.0.113.2/30"));
  B.static_route b "e" Prefix.any (ip "203.0.113.1");
  B.default_originate b "e";
  let net = B.build b in
  let dp = Dataplane.compute net in
  match Fib.lookup (ip "8.8.8.8") (Dataplane.fib "c" dp) with
  | Some route -> checkb "default via ospf" true (route.Fib.protocol = Fib.Ospf)
  | None -> Alcotest.fail "no default route on c"

let test_ospf_interarea () =
  (* a --(area 1)-- abr --(area 0)-- b : a must learn b's subnet. *)
  let b = B.create () in
  List.iter (B.router b) [ "a"; "abr"; "bb" ];
  ignore (B.p2p ~area:1 b "a" "abr");
  ignore (B.p2p ~area:0 b "abr" "bb");
  B.routed_host ~area:1 b ~host_name:"ha" ~dev:"a" ~subnet:(pfx "10.21.0.0/24") ~host_octet:10;
  B.routed_host ~area:0 b ~host_name:"hb" ~dev:"bb" ~subnet:(pfx "10.22.0.0/24") ~host_octet:10;
  let net = B.build b in
  let dp = Dataplane.compute net in
  (match Fib.lookup (ip "10.22.0.10") (Dataplane.fib "a" dp) with
  | Some r -> checkb "inter-area route" true (r.Fib.protocol = Fib.Ospf)
  | None -> Alcotest.fail "a has no route to area-0 subnet");
  match Fib.lookup (ip "10.21.0.10") (Dataplane.fib "bb" dp) with
  | Some r -> checkb "reverse inter-area" true (r.Fib.protocol = Fib.Ospf)
  | None -> Alcotest.fail "bb has no route to area-1 subnet"

let test_ospf_two_abr_chain () =
  (* area 1 - abr1 - area 0 - abr2 - area 2: routes must cross twice. *)
  let b = B.create () in
  List.iter (B.router b) [ "x"; "abr1"; "abr2"; "y" ];
  ignore (B.p2p ~area:1 b "x" "abr1");
  ignore (B.p2p ~area:0 b "abr1" "abr2");
  ignore (B.p2p ~area:2 b "abr2" "y");
  B.routed_host ~area:1 b ~host_name:"hx" ~dev:"x" ~subnet:(pfx "10.31.0.0/24") ~host_octet:10;
  B.routed_host ~area:2 b ~host_name:"hy" ~dev:"y" ~subnet:(pfx "10.32.0.0/24") ~host_octet:10;
  let net = B.build b in
  let dp = Dataplane.compute net in
  match Fib.lookup (ip "10.32.0.10") (Dataplane.fib "x" dp) with
  | Some _ -> ()
  | None -> Alcotest.fail "no route across two ABRs"

(* ---------------- BGP ---------------- *)

let bgp_pair () =
  let b = B.create () in
  List.iter (B.router b) [ "ra"; "rb" ];
  let subnet = B.p2p b "ra" "rb" in
  let a_addr = Prefix.host subnet 1 and b_addr = Prefix.host subnet 2 in
  B.routed_host b ~host_name:"hha" ~dev:"ra" ~subnet:(pfx "10.41.0.0/24") ~host_octet:10;
  B.routed_host b ~host_name:"hhb" ~dev:"rb" ~subnet:(pfx "10.42.0.0/24") ~host_octet:10;
  let net = B.build b in
  let with_bgp node local_as peer remote_as advertised =
    let cfg = Network.config_exn node net in
    {
      cfg with
      Ast.bgp =
        Some
          {
            Ast.local_as;
            bgp_neighbors = [ { Ast.peer; remote_as } ];
            advertised;
          };
    }
  in
  net
  |> Network.with_config "ra" (with_bgp "ra" 65001 b_addr 65002 [ pfx "10.41.0.0/24" ])
  |> Network.with_config "rb" (with_bgp "rb" 65002 a_addr 65001 [ pfx "10.42.0.0/24" ])

let test_bgp_session_and_routes () =
  let net = bgp_pair () in
  let l2 = L2.compute net in
  checki "two session views" 2 (List.length (Bgp.sessions net l2));
  let dp = Dataplane.compute net in
  match Fib.lookup (ip "10.42.0.10") (Dataplane.fib "ra" dp) with
  | Some r -> checkb "bgp route" true (r.Fib.protocol = Fib.Bgp)
  | None -> Alcotest.fail "ra has no bgp route"

let test_bgp_wrong_as_no_session () =
  let net = bgp_pair () in
  let cfg = Network.config_exn "ra" net in
  let bad =
    {
      cfg with
      Ast.bgp =
        Some
          {
            (Option.get cfg.Ast.bgp) with
            Ast.bgp_neighbors =
              List.map
                (fun (n : Ast.bgp_neighbor) -> { n with remote_as = 65999 })
                (Option.get cfg.Ast.bgp).bgp_neighbors;
          };
    }
  in
  let net = Network.with_config "ra" bad net in
  checki "no sessions" 0 (List.length (Bgp.sessions net (L2.compute net)))

(* ---------------- RIB / FIB selection ---------------- *)

let test_admin_distance_preference () =
  (* A static route should beat OSPF for the same prefix. *)
  let net = triangle () in
  let with_static =
    Result.get_ok
      (Network.apply_changes
         [
           Change.v "r1"
             (Change.Add_static_route
                { Ast.sr_prefix = pfx "10.2.0.0/24";
                  sr_next_hop = ip "10.200.0.2" (* via r2 directly *);
                  sr_distance = 1 });
         ]
         net)
  in
  let dp = Dataplane.compute with_static in
  match Fib.lookup (ip "10.2.0.10") (Dataplane.fib "r1" dp) with
  | Some r -> checkb "static wins" true (r.Fib.protocol = Fib.Static)
  | None -> Alcotest.fail "no route"

let test_fib_longest_prefix () =
  let routes =
    [
      { Fib.prefix = Prefix.any; next_hop = Some (ip "1.1.1.1"); out_iface = "e0";
        protocol = Fib.Static; distance = 1; metric = 0 };
      { Fib.prefix = pfx "10.0.0.0/8"; next_hop = Some (ip "2.2.2.2"); out_iface = "e1";
        protocol = Fib.Ospf; distance = 110; metric = 20 };
    ]
  in
  let fib = Fib.of_candidates routes in
  checki "two routes" 2 (Fib.route_count fib);
  (match Fib.lookup (ip "10.5.5.5") fib with
  | Some r -> checks "specific" "e1" r.Fib.out_iface
  | None -> Alcotest.fail "no route");
  match Fib.lookup (ip "11.0.0.1") fib with
  | Some r -> checks "default" "e0" r.Fib.out_iface
  | None -> Alcotest.fail "no default"

let test_fib_candidate_selection () =
  let mk protocol distance metric =
    { Fib.prefix = pfx "10.0.0.0/8"; next_hop = Some (ip "1.1.1.1");
      out_iface = Fib.protocol_to_string protocol; protocol; distance; metric }
  in
  let fib =
    Fib.of_candidates [ mk Fib.Ospf 110 5; mk Fib.Static 1 0; mk Fib.Connected 0 0 ]
  in
  match Fib.lookup (ip "10.1.1.1") fib with
  | Some r -> checkb "connected wins" true (r.Fib.protocol = Fib.Connected)
  | None -> Alcotest.fail "no route"

(* ---------------- Dataplane ---------------- *)

let test_connected_and_static_routes () =
  let net = triangle () in
  checki "r1 connected" 3 (List.length (Dataplane.connected_routes net "r1"));
  (* Host default gateway becomes a static default. *)
  let statics = Dataplane.static_routes net "h1" in
  checki "host static" 1 (List.length statics);
  checkb "default" true (Prefix.equal (List.hd statics).Fib.prefix Prefix.any)

let test_unresolvable_static_ignored () =
  let net = triangle () in
  let bad =
    Result.get_ok
      (Network.apply_changes
         [
           Change.v "r1"
             (Change.Add_static_route
                { Ast.sr_prefix = pfx "10.99.0.0/16";
                  sr_next_hop = ip "172.31.0.1" (* not in any connected subnet *);
                  sr_distance = 1 });
         ]
         net)
  in
  let statics = Dataplane.static_routes bad "r1" in
  checkb "ignored" true
    (not (List.exists (fun r -> Prefix.equal r.Fib.prefix (pfx "10.99.0.0/16")) statics))

let test_shut_interface_loses_connected () =
  let net = triangle () in
  let broken =
    Result.get_ok
      (Network.apply_changes
         [ Change.v "r1" (Change.Set_interface_enabled { iface = "eth2"; enabled = false }) ]
         net)
  in
  let before = List.length (Dataplane.connected_routes net "r1") in
  let after = List.length (Dataplane.connected_routes broken "r1") in
  checki "one fewer" (before - 1) after

let test_l3_neighbour () =
  let net = triangle () in
  let dp = Dataplane.compute net in
  checkb "adjacent" true (Dataplane.l3_neighbour dp "r1" (ip "10.200.0.2") <> None);
  checkb "not adjacent" true (Dataplane.l3_neighbour dp "h1" (ip "10.2.0.10") = None)

let suite =
  [
    Alcotest.test_case "network accessors" `Quick test_network_accessors;
    Alcotest.test_case "network restrict" `Quick test_network_restrict;
    Alcotest.test_case "network validate subnet mismatch" `Quick
      test_network_validate_catches_subnet_mismatch;
    Alcotest.test_case "network hostname consistency" `Quick test_network_hostname_consistency;
    Alcotest.test_case "l2 direct link" `Quick test_l2_direct_link;
    Alcotest.test_case "l2 vlan through switch" `Quick test_l2_vlan_through_switch;
    Alcotest.test_case "l2 wrong vlan breaks domain" `Quick test_l2_wrong_vlan_breaks_domain;
    Alcotest.test_case "l2 shutdown detaches" `Quick test_l2_shutdown_detaches;
    Alcotest.test_case "l2 trunk vlan filtering" `Quick test_l2_access_trunk_mismatch;
    Alcotest.test_case "ospf enabled interfaces" `Quick test_ospf_enabled_interfaces;
    Alcotest.test_case "ospf adjacencies" `Quick test_ospf_adjacency;
    Alcotest.test_case "ospf prefers low cost" `Quick test_ospf_prefers_low_cost;
    Alcotest.test_case "ospf area mismatch" `Quick test_ospf_area_mismatch_kills_adjacency;
    Alcotest.test_case "ospf default originate" `Quick test_ospf_default_originate;
    Alcotest.test_case "ospf inter-area" `Quick test_ospf_interarea;
    Alcotest.test_case "ospf two-abr chain" `Quick test_ospf_two_abr_chain;
    Alcotest.test_case "bgp session and routes" `Quick test_bgp_session_and_routes;
    Alcotest.test_case "bgp wrong AS" `Quick test_bgp_wrong_as_no_session;
    Alcotest.test_case "admin distance preference" `Quick test_admin_distance_preference;
    Alcotest.test_case "fib longest prefix" `Quick test_fib_longest_prefix;
    Alcotest.test_case "fib candidate selection" `Quick test_fib_candidate_selection;
    Alcotest.test_case "connected and static routes" `Quick test_connected_and_static_routes;
    Alcotest.test_case "unresolvable static ignored" `Quick test_unresolvable_static_ignored;
    Alcotest.test_case "shut interface loses connected" `Quick
      test_shut_interface_loses_connected;
    Alcotest.test_case "l3 neighbour" `Quick test_l3_neighbour;
  ]
