(* The Heimdall workflow on an SDN fabric — the paper's "beyond legacy
   networks" direction (§7).  A controller compiles connectivity intents
   into flow tables; a technician edits rules on a twin copy under a
   least-privilege spec; verification re-checks the intents before the
   new tables are accepted.

   Run with: dune exec examples/sdn_twin.exe *)

open Heimdall_net
open Heimdall_sdn
open Heimdall_privilege

let ip = Ipv4.of_string

let () =
  (* A two-rack fabric: hosts on leaf switches, one spine. *)
  let topo =
    let open Topology in
    empty
    |> add_node "leaf1" Switch |> add_node "leaf2" Switch |> add_node "spine" Switch
    |> add_node "web" Host |> add_node "db" Host |> add_node "guest" Host
    |> add_link { node = "leaf1"; iface = "up" } { node = "spine"; iface = "d1" }
    |> add_link { node = "leaf2"; iface = "up" } { node = "spine"; iface = "d2" }
    |> add_link { node = "web"; iface = "eth0" } { node = "leaf1"; iface = "h1" }
    |> add_link { node = "guest"; iface = "eth0" } { node = "leaf1"; iface = "h2" }
    |> add_link { node = "db"; iface = "eth0" } { node = "leaf2"; iface = "h1" }
  in
  let hosts = [ ("web", ip "10.0.1.10"); ("db", ip "10.0.2.10"); ("guest", ip "10.0.3.10") ] in
  let fabric = Fabric.make topo ~hosts in
  let intents =
    [
      Controller.Connect { src = "web"; dst = "db" };
      Controller.Connect { src = "guest"; dst = "web" };
      Controller.Block { src = "guest"; dst = "db"; proto = Heimdall_net.Acl.Any_proto };
    ]
  in
  let production = Controller.compile fabric intents in
  Printf.printf "fabric compiled: %d rules across %d switches; intents hold: %b\n\n"
    (Fabric.rule_count production)
    (List.length (Fabric.switches production))
    (Controller.violations production intents = []);

  (* Ticket: "web cannot be reached from guest after a rule cleanup" —
     technician gets rule edits on leaf1 only. *)
  let privilege = Privilege.of_predicates (Twin_sdn.allow_sdn ~switches:[ "leaf1" ] ()) in
  let session = Twin_sdn.open_session ~privilege production in
  (match Twin_sdn.show_table session "leaf1" with
  | Ok t -> Printf.printf "leaf1 table:\n%s\n" t
  | Error m -> print_endline m);

  (* The technician tries a lazy allow-everything rule on the spine —
     denied — and then a legitimate scoped rule on leaf1. *)
  let sloppy = Rule.make ~cookie:"tech" ~priority:500 Rule.any (Rule.Forward "d2") in
  (match Twin_sdn.install session "spine" sloppy with
  | Error m -> Printf.printf "spine edit: %s\n" m
  | Ok () -> print_endline "spine edit allowed (!)");
  let scoped =
    Rule.make ~cookie:"tech" ~priority:150
      (Rule.matcher ~src:(Prefix.of_string "10.0.3.10/32") ~dst:(Prefix.of_string "10.0.2.10/32") ())
      Rule.Drop
  in
  (match Twin_sdn.install session "leaf1" scoped with
  | Ok () -> print_endline "leaf1 edit applied in the twin"
  | Error m -> print_endline m);

  (* Verification: intents must still hold. *)
  let outcome = Twin_sdn.verify session ~baseline:production ~intents in
  Printf.printf "\nverification: %s\n"
    (if outcome.Twin_sdn.approved then "approved" else "rejected");
  List.iter
    (fun i -> Printf.printf "  violated: %s\n" (Controller.intent_to_string i))
    outcome.Twin_sdn.violated;
  Printf.printf "audit records: %d (verifies: %b)\n"
    (Heimdall_enforcer.Audit.length (Twin_sdn.audit session))
    (Heimdall_enforcer.Audit.verify (Twin_sdn.audit session) = Ok ())
