(* Bring your own network: build a small campus with the Builder DSL,
   mine its policies, write a Privilege_msp by hand (text DSL and JSON),
   and run the attack-surface sweep on it — i.e. use Heimdall as a
   library on a network the paper never saw.

   Run with: dune exec examples/custom_network.exe *)

open Heimdall
module B = Scenarios.Builder

let pfx = Net.Prefix.of_string
let ia = Net.Ifaddr.of_string
let ip = Net.Ipv4.of_string

let build_network () =
  let b = B.create () in
  (* Two sites joined by a WAN pair, a firewall in front of the lab. *)
  List.iter (B.router b) [ "wan1"; "wan2"; "site-a"; "site-b" ];
  B.firewall b "labfw";
  B.switch b "asw";
  ignore (B.p2p ~area:0 b "wan1" "wan2");
  ignore (B.p2p ~area:0 b "wan1" "site-a");
  ignore (B.p2p ~area:0 b "wan2" "site-b");
  ignore (B.p2p ~area:0 b "site-a" "site-b");
  ignore (B.p2p ~area:0 b "site-b" "labfw");
  (* Site A: a VLAN'd office behind a switch. *)
  B.svi ~area:0 b "site-a" 10 (ia "192.168.10.1/24");
  B.trunk_link b "asw" "site-a" ~vlans:[ 10 ];
  B.attach_host b ~host_name:"alice" ~dev:"asw" ~vlan:10 ~addr:(ia "192.168.10.5/24")
    ~gateway:(ip "192.168.10.1");
  (* Site B: a routed server port. *)
  B.routed_host ~area:0 b ~host_name:"files" ~dev:"site-b" ~subnet:(pfx "192.168.20.0/24")
    ~host_octet:5;
  (* The lab, protected by labfw. *)
  B.routed_host ~area:0 b ~host_name:"lab" ~dev:"labfw" ~subnet:(pfx "192.168.30.0/24")
    ~host_octet:5;
  let acl =
    Net.Acl.make "LAB"
      [
        Net.Acl.rule ~proto:(Net.Acl.Proto Net.Flow.Icmp) ~seq:10 Net.Acl.Deny
          (pfx "192.168.10.0/24") (pfx "192.168.30.0/24");
        Net.Acl.rule ~seq:20 Net.Acl.Permit Net.Prefix.any Net.Prefix.any;
      ]
  in
  B.acl b "labfw" acl;
  B.bind_acl b ~node:"labfw" ~iface:"eth0" ~dir:`In "LAB";
  B.secret b "wan1" (Config.Ast.Enable_secret "wan1-secret-77");
  B.build b

let () =
  let net = build_network () in
  (match Control.Network.validate net with
  | Ok () -> print_endline "custom network validates"
  | Error m -> failwith m);

  (* Mine the policies config2spec-style. *)
  let policies = mine_policies net in
  Printf.printf "%d policies mined:\n" (List.length policies);
  List.iter (fun p -> Printf.printf "  %s\n" (Verify.Policy.to_string p)) policies;

  (* A hand-written Privilege_msp, in the text DSL... *)
  let spec =
    Privilege.Dsl.parse
      {|
      # read-only everywhere, repairs only on the WAN pair
      allow show.*, diag.* on *;
      allow interface.up, interface.shutdown, ospf.cost on wan*;
      deny system.* on *;
      |}
  in
  Printf.printf "\nDSL spec allows 'ospf.cost on wan2': %b\n"
    (Privilege.Spec.allows spec (Privilege.Spec.request "ospf.cost" "wan2"));
  (* ...and the same thing through the JSON front-end. *)
  let json = Privilege.Json_frontend.render ~pretty:true spec in
  print_endline "\nas JSON:";
  print_endline json;
  (match Privilege.Json_frontend.parse json with
  | Ok spec2 ->
      Printf.printf "JSON roundtrip preserves semantics: %b\n"
        (Privilege.Spec.allows spec2 (Privilege.Spec.request "ospf.cost" "wan2"))
  | Error m -> failwith m);

  (* Finally: the Figure-8-style sweep on this custom network. *)
  print_endline "\nattack-surface sweep (bring down each interface):";
  let summaries = Scenarios.Metrics.sweep_all ~production:net ~policies () in
  List.iter
    (fun (s : Scenarios.Metrics.summary) ->
      Printf.printf "  %-9s feasibility %5.1f%%  attack surface %5.1f%%\n"
        (Scenarios.Metrics.technique_to_string s.technique)
        s.feasibility_pct s.attack_surface_pct)
    summaries
