(* Quickstart: the whole Heimdall workflow in one file.

   A ticket arrives ("h2 cannot reach the printer"), the admin derives a
   Privilege_msp, a twin network is built, the technician fixes the issue
   inside the twin, and the policy enforcer verifies and imports the
   changes into production — with a tamper-evident audit trail at the end.

   Run with: dune exec examples/quickstart.exe *)

open Heimdall

let section title = Printf.printf "\n--- %s ---\n" title

let () =
  (* 1. The production network and its mined policies. *)
  let production = Scenarios.Enterprise.build () in
  let policies = Scenarios.Enterprise.policies production in
  Printf.printf "production: %d devices, %d policies mined\n"
    (List.length (Control.Network.node_names production))
    (List.length policies);

  (* 2. A ticket arrives; the injected fault models the real outage. *)
  let issue = List.hd (Scenarios.Enterprise.issues production) in
  let broken = issue.Msp.Issue.inject production in
  section "ticket";
  print_endline (Msp.Ticket.to_string issue.Msp.Issue.ticket);

  (* 3. Task-driven privilege generation: least privilege by default. *)
  let slice =
    Twin.Build.slice_nodes ~production:broken
      ~endpoints:issue.Msp.Issue.ticket.endpoints ()
  in
  let privilege =
    Msp.Priv_gen.for_ticket ~network:broken ~slice issue.Msp.Issue.ticket
  in
  section "generated Privilege_msp";
  print_endline (Privilege.Dsl.render privilege);

  (* 4. Build the twin (sliced + scrubbed) and open a monitored session. *)
  let twin =
    Twin.Build.build ~production:broken ~endpoints:issue.Msp.Issue.ticket.endpoints ()
  in
  let session = Twin.Build.open_session ~privilege twin in
  section "technician session (inside the twin)";
  List.iter
    (fun cmd ->
      Printf.printf "$ %s\n" cmd;
      match Twin.Session.exec session cmd with
      | Ok out -> print_string out
      | Error e -> Printf.printf "%% %s\n" (Twin.Session.error_to_string e))
    issue.Msp.Issue.fix_commands;

  (* 5. The enforcer verifies the changes and schedules them. *)
  let outcome =
    Enforcer.Pipeline.process ~production:broken ~policies ~privilege ~session ()
  in
  section "policy enforcer";
  print_string (Enforcer.Pipeline.outcome_to_string outcome);

  (* 6. Check the fix took effect in production. *)
  (match outcome.Enforcer.Pipeline.updated with
  | Some updated ->
      let fixed = not (Msp.Issue.symptom_present issue updated) in
      Printf.printf "issue resolved in production: %b\n" fixed
  | None -> print_endline "changes rejected; production untouched");

  (* 7. The audit trail is verifiable and sealed. *)
  section "audit trail";
  print_endline (Enforcer.Audit.to_string outcome.Enforcer.Pipeline.audit);
  Printf.printf "\naudit chain verifies: %b\nattestation verifies: %b\n"
    (Enforcer.Audit.verify outcome.Enforcer.Pipeline.audit = Ok ())
    (Enforcer.Enclave.verify_report outcome.Enforcer.Pipeline.report)
