examples/troubleshoot_ospf.mli:
