examples/emergency_mode.ml: Enforcer Heimdall List Msp Printf Privilege Scenarios
