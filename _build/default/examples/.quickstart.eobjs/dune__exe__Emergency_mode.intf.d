examples/emergency_mode.mli:
