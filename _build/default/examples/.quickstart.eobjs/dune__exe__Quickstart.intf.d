examples/quickstart.mli:
