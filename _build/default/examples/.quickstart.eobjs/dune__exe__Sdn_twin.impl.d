examples/sdn_twin.ml: Controller Fabric Heimdall_enforcer Heimdall_net Heimdall_privilege Heimdall_sdn Ipv4 List Prefix Printf Privilege Rule Topology Twin_sdn
