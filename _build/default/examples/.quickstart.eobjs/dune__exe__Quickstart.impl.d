examples/quickstart.ml: Control Enforcer Heimdall List Msp Printf Privilege Scenarios Twin
