examples/sdn_twin.mli:
