examples/custom_network.ml: Config Control Heimdall List Net Printf Privilege Scenarios Verify
