examples/troubleshoot_ospf.ml: Control Enforcer Heimdall List Msp Net Printf Scenarios Verify
