examples/attack_containment.ml: Control Enforcer Heimdall List Msp Net Printf Scenarios Twin
