(* The paper's OSPF troubleshooting scenario (section 5), step by step:
   an office router's uplink is configured into the wrong OSPF area, its
   subnet drops off the network, and the technician diagnoses and fixes
   it inside the twin — comparing what the Current and Heimdall
   workflows cost.

   Run with: dune exec examples/troubleshoot_ospf.exe *)

open Heimdall

let () =
  let production = Scenarios.Enterprise.build () in
  let policies = Scenarios.Enterprise.policies production in
  let issue =
    List.find
      (fun (i : Msp.Issue.t) -> i.name = "ospf")
      (Scenarios.Enterprise.issues production)
  in
  Printf.printf "ticket: %s\n\n" (Msp.Ticket.to_string issue.Msp.Issue.ticket);

  (* Show the symptom on the broken network. *)
  let broken = issue.Msp.Issue.inject production in
  let dp = Control.Dataplane.compute broken in
  let probe = issue.Msp.Issue.probe in
  Printf.printf "probe before fix (%s):\n%s\n" (Net.Flow.to_string probe)
    (Verify.Trace.result_to_string (Verify.Trace.trace dp probe));

  (* Run both workflows and compare. *)
  let current = Msp.Workflow.run_current ~production ~issue in
  let heimdall = Msp.Workflow.run_heimdall ~production ~policies ~issue () in
  print_string (Msp.Workflow.run_to_string current);
  print_newline ();
  print_string (Msp.Workflow.run_to_string heimdall);
  Printf.printf "\nHeimdall overhead: +%.1f s — the price of working on an isolated twin\n"
    (Msp.Workflow.total_s heimdall -. Msp.Workflow.total_s current);

  (* Show what the technician could and could not touch. *)
  (match heimdall.Msp.Workflow.outcome with
  | Some outcome ->
      Printf.printf "\nchanges imported into production:\n";
      (match outcome.Enforcer.Pipeline.plan with
      | Some plan -> print_string (Enforcer.Scheduler.plan_to_string plan)
      | None -> ());
      Printf.printf "policies repaired: %d\n"
        (List.length outcome.Enforcer.Pipeline.fixed_policies)
  | None -> ());

  (* And the probe after the fix. *)
  let final = heimdall.Msp.Workflow.final_network in
  Printf.printf "\nprobe after fix:\n%s"
    (Verify.Trace.result_to_string
       (Verify.Trace.trace (Control.Dataplane.compute final) probe))
