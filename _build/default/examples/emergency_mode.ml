(* Emergency mode (paper section 7): the twin cannot help — the uplink is
   physically down and the fix must happen on production NOW.  The
   reference monitor bypasses the twin but routes every command through
   the policy enforcer: privilege-checked, policy-checked, audited.

   Run with: dune exec examples/emergency_mode.exe *)

open Heimdall

let () =
  let production = Scenarios.Enterprise.build () in
  let policies = Scenarios.Enterprise.policies production in
  let issue =
    List.find
      (fun (i : Msp.Issue.t) -> i.name = "isp")
      (Scenarios.Enterprise.issues production)
  in
  let broken = issue.Msp.Issue.inject production in
  Printf.printf "ticket: %s\n" (Msp.Ticket.to_string issue.Msp.Issue.ticket);
  Printf.printf "symptom present: %b\n\n" (Msp.Issue.symptom_present issue broken);

  (* The admin grants an emergency privilege scoped to the edge router. *)
  let privilege =
    Privilege.Dsl.parse
      {|
      allow show.*, diag.* on *;
      allow interface.up, interface.shutdown, interface.addr on r1;
      allow route.static, route.gateway on r1;
      |}
  in
  let session =
    Msp.Emergency.open_session ~reason:"uplink circuit dead; customer offline"
      ~production:broken ~policies ~privilege ()
  in

  (* The prepared fix — plus two commands that must NOT get through. *)
  let commands =
    issue.Msp.Issue.fix_commands
    @ [ "configure interface vlan10 shutdown" (* wrong device anyway *);
        "erase startup-config" ]
  in
  List.iter
    (fun cmd ->
      Printf.printf "$ %s\n" cmd;
      match Msp.Emergency.exec session cmd with
      | Ok out -> print_string out
      | Error r -> Printf.printf "%% %s\n" (Msp.Emergency.refusal_to_string r))
    commands;

  Printf.printf "\nchanges applied to production: %d\n"
    (List.length (Msp.Emergency.applied session));
  Printf.printf "issue resolved: %b\n"
    (not (Msp.Issue.symptom_present issue (Msp.Emergency.production session)));
  Printf.printf "audit records: %d (chain verifies: %b)\n"
    (Enforcer.Audit.length (Msp.Emergency.audit session))
    (Enforcer.Audit.verify (Msp.Emergency.audit session) = Ok ())
