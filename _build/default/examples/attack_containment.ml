(* The paper's motivating incidents (section 2.2), replayed against both
   the status-quo RMM model and Heimdall:

   1. APT10-style data exfiltration: the technician account tries to
      harvest credentials from every router.
   2. A malicious ACL edit that would open the protected server subnet.
   3. The careless 'erase' on an office gateway.

   Run with: dune exec examples/attack_containment.exe *)

open Heimdall

let () =
  let production = Scenarios.Enterprise.build () in
  let policies = Scenarios.Enterprise.policies production in

  (* --- 1. Exfiltration ------------------------------------------- *)
  print_endline "=== APT10-style exfiltration ===";
  let routers =
    List.filter
      (fun n -> Control.Network.kind n production = Some Net.Topology.Router)
      (Control.Network.node_names production)
  in
  (* Baseline: direct RMM access. *)
  let rmm = Msp.Rmm.open_direct_session production in
  let base = Msp.Attacks.exfiltrate ~production ~targets:routers rmm in
  Printf.printf "RMM baseline: %d commands, %d denied, %d secrets exfiltrated\n"
    base.Msp.Attacks.attempted base.Msp.Attacks.denied
    (List.length base.Msp.Attacks.leaked);
  (* Heimdall: the attacker only holds a twin session for a VLAN ticket. *)
  let ticket =
    Msp.Ticket.make ~id:"T-1" ~kind:Msp.Ticket.Vlan ~description:"port move"
      ~endpoints:[ "h2"; "h3" ]
  in
  let slice =
    Twin.Build.slice_nodes ~production ~endpoints:ticket.Msp.Ticket.endpoints ()
  in
  let privilege = Msp.Priv_gen.for_ticket ~network:production ~slice ticket in
  let twin = Twin.Build.build ~production ~endpoints:ticket.Msp.Ticket.endpoints () in
  let session = Twin.Build.open_session ~privilege twin in
  let contained = Msp.Attacks.exfiltrate ~production ~targets:routers session in
  Printf.printf "Heimdall twin: %d commands, %d denied, %d secrets exfiltrated\n\n"
    contained.Msp.Attacks.attempted contained.Msp.Attacks.denied
    (List.length contained.Msp.Attacks.leaked);

  (* --- 2. Malicious ACL edit -------------------------------------- *)
  print_endline "=== malicious ACL edit (insider) ===";
  let malicious =
    Msp.Attacks.malicious_acl_commands ~acl:"SRV_PROT" ~seq:5
      ~src:(Net.Prefix.of_string "10.1.10.0/24")
      ~dst:Scenarios.Enterprise.sensitive_subnet ~node:"r8"
  in
  (* Baseline: the rule lands in production. *)
  let rmm = Msp.Rmm.open_direct_session production in
  ignore (Twin.Session.exec_many rmm malicious);
  let damaged = Msp.Rmm.resulting_network rmm in
  Printf.printf "RMM baseline: %d policies newly violated in production\n"
    (Msp.Attacks.policy_damage ~policies ~before:production ~after:damaged);
  (* Heimdall: the monitor allows the (in-class) edit in the twin, but
     the enforcer's verification rejects the import. *)
  let ticket =
    Msp.Ticket.make ~id:"T-2" ~kind:Msp.Ticket.Connectivity
      ~description:"server access flaky" ~endpoints:[ "h1"; "h8" ]
  in
  let slice = Twin.Build.slice_nodes ~production ~endpoints:[ "h1"; "h8" ] () in
  let privilege = Msp.Priv_gen.for_ticket ~network:production ~slice ticket in
  let twin = Twin.Build.build ~production ~endpoints:[ "h1"; "h8" ] () in
  let session = Twin.Build.open_session ~privilege twin in
  ignore (Twin.Session.exec_many session malicious);
  let outcome =
    Enforcer.Pipeline.process ~production ~policies ~privilege ~session ()
  in
  Printf.printf "Heimdall: enforcer verdict = %s\n"
    (if outcome.Enforcer.Pipeline.approved then "APPROVED (!)" else "rejected");
  List.iter
    (fun r -> Printf.printf "  %s\n" (Enforcer.Verifier.rejection_to_string r))
    outcome.Enforcer.Pipeline.rejections;
  print_newline ();

  (* --- 3. Careless erase ------------------------------------------ *)
  print_endline "=== careless erase on the office gateway ===";
  let erase = Msp.Attacks.erase_gateway_commands ~gateway:"r4" in
  let rmm = Msp.Rmm.open_direct_session production in
  ignore (Twin.Session.exec_many rmm erase);
  Printf.printf "RMM baseline: %d policies newly violated after the erase\n"
    (Msp.Attacks.policy_damage ~policies ~before:production
       ~after:(Msp.Rmm.resulting_network rmm));
  let twin = Twin.Build.build ~production ~endpoints:[ "h2"; "h3" ] () in
  let session =
    Twin.Build.open_session
      ~privilege:
        (Msp.Priv_gen.for_ticket ~network:production
           ~slice:(Twin.Build.slice_nodes ~production ~endpoints:[ "h2"; "h3" ] ())
           (Msp.Ticket.make ~id:"T-3" ~kind:Msp.Ticket.Vlan ~description:""
              ~endpoints:[ "h2"; "h3" ]))
      twin
  in
  let results = Twin.Session.exec_many session erase in
  Printf.printf "Heimdall: erase attempt -> %s\n"
    (match List.rev results with
    | Error e :: _ -> Twin.Session.error_to_string e
    | Ok _ :: _ -> "executed (!)"
    | [] -> "no commands")
